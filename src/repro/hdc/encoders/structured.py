"""Structured O(D log D) projection encoders (SORF / Fastfood).

Every dense encoder in the repo pays an ``O(n·q·D)`` matmul against a
materialised ``(D, q)`` Gaussian matrix.  The encoders here replace that
matrix with the *structured orthogonal random features* (SORF) chain

    y_block = H D₃ H D₂ H D₁ x_pad

where ``x_pad`` is the feature vector zero-padded to ``m = next_pow2(q)``,
each ``Dᵢ`` is a seed-derived Rademacher (±1) diagonal, and ``H`` is the
``m × m`` Walsh–Hadamard matrix applied in ``O(m log m)`` by
:meth:`repro.backend.base.ArrayBackend.fwht_rows`.  Blocks are stacked —
``nb = ceil(D / m)`` independent chains — to reach an arbitrary output
dimensionality ``D``; parameter memory is ``O(nb · m) = O(D)`` instead of
``O(q · D)``.

Scaling
-------
For the chain above, each output entry has standard deviation ``m · ‖x‖``
(each ``H`` multiplies norms by ``√m`` and the matrix ``H D₃ H D₂ H D₁``
satisfies ``E[MᵀM] = m³ I``, so per-row second moments are ``m²``).  To mimic
a dense projection ``B_i ~ N(0, σ²)^q`` the chain output is multiplied by a
per-output-dimension scale

    scale_d = (σ / m) · √(χ²_q / q)

where the chi-squared factor reproduces the row-norm fluctuations of a true
Gaussian matrix (Fastfood's scaling diagonal ``S``).  ``σ`` matches the dense
counterparts: ``1/√q`` for :class:`StructuredProjectionEncoder` (mirroring
``RandomProjectionEncoder``) and ``bandwidth/√q`` for
:class:`FastfoodRBFEncoder` (mirroring ``RBFEncoder``).

Regeneration
------------
Output dimension ``d`` reads chain slot ``src_slots[d]`` (of the
``nb · m`` produced), initialised to the identity ``d → d`` — slots are
exchangeable, so this costs nothing and keeps the gather a free slice until
the first regeneration.  :meth:`StructuredProjectionEncoder.regenerate`
redraws, per selected dimension, the source slot (uniform over all slots,
*with replacement* — a collision merely correlates two output dimensions and
is rare for large ``D``), the chi-distributed scale, and (Fastfood) the
phase, so DistHD/NeuralHD regeneration keeps working without touching the
shared diagonals other dimensions depend on.

Determinism
-----------
All draws are materialised on the host NumPy generator in a fixed order
(signs, then scales, then Fastfood phases; regeneration continues the same
stream), so encoders built at the same seed are bit-identical across
backends — the invariant ``shard_fit`` and the bundling merge rely on.
"""

from __future__ import annotations

import numpy as np

from typing import Any

from repro.backend import BackendLike
from repro.hdc.encoders.base import RegenerableEncoder
from repro.hdc.fwht import next_pow2
from repro.utils.rng import SeedLike, as_rng

_ACTIVATIONS = ("linear", "sign", "tanh", "cos")


class StructuredProjectionEncoder(RegenerableEncoder):
    """SORF-chain counterpart of :class:`RandomProjectionEncoder`.

    Parameters
    ----------
    n_features, dim:
        Input and output sizes.  Inputs are zero-padded to
        ``block = next_pow2(n_features)`` columns; ``ceil(dim / block)``
        chains are stacked and the first ``dim`` outputs kept.
    activation:
        ``"linear"``, ``"sign"``, ``"tanh"`` or ``"cos"`` — same contract as
        the dense projection encoder.
    seed:
        RNG seed; all draws (and regeneration redraws) come from one host
        NumPy stream, so same seed ⇒ bit-identical parameters on every
        backend.
    dtype, backend:
        Compute dtype and array backend.

    Attributes
    ----------
    block:
        Padded chain width ``m`` (power of two).
    n_blocks:
        Stacked chain count ``nb``.
    signs:
        ``(nb, 3, m)`` Rademacher diagonals — the ``D₁, D₂, D₃`` of each
        chain.
    src_slots:
        ``(dim,)`` host int64 map from output dimension to chain slot.
    scales:
        ``(dim,)`` per-output-dimension scale (base ``σ/m`` times the
        chi-distributed row-norm factor).
    regenerated_count:
        Lifetime dimension-redraw total (effective dimensionality is
        ``dim + regenerated_count``).
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        activation: str = "linear",
        seed: SeedLike = None,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        super().__init__(n_features, dim, dtype=dtype, backend=backend)
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_ACTIVATIONS}, got {activation!r}"
            )
        self.activation = activation
        self._rng = as_rng(seed)
        b = self.backend
        self.block = next_pow2(self.n_features)
        self.n_blocks = -(-self.dim // self.block)
        self._n_slots = self.n_blocks * self.block
        # Rademacher diagonals, drawn on the host generator (not via the
        # backend draw helpers, which have no ±1 draw) so every backend sees
        # identical signs for a given seed.
        signs = self._rng.integers(0, 2, size=(self.n_blocks, 3, self.block))
        self.signs = b.asarray(2.0 * signs - 1.0, dtype=self.dtype)
        self.scales = b.asarray(self._draw_scales(self.dim), dtype=self.dtype)
        # Identity slot map: slots are exchangeable, so starting at d -> d
        # is as random as any permutation and keeps the output gather a
        # plain slice until the first regeneration.
        self.src_slots = np.arange(self.dim, dtype=np.int64)
        self._identity_slots = True
        self.regenerated_count = 0

    def _sigma(self) -> float:
        """Std-dev of the dense Gaussian projection being mimicked."""
        return 1.0 / np.sqrt(self.n_features)

    def _draw_scales(self, count: int) -> np.ndarray:
        q = self.n_features
        chi = np.sqrt(self._rng.chisquare(q, count) / q)
        return (self._sigma() / self.block) * chi

    # ------------------------------------------------------------ projection

    def _chain(self, X: Any, signs: Any, nb: int) -> Any:
        """Run ``H D₃ H D₂ H D₁ x_pad`` for ``nb`` blocks → ``(n, nb·m)``.

        One ``(n·nb, m)`` work buffer carries the whole chain: the first
        diagonal is fused into the padded scatter of ``X``, and each
        ``fwht_rows`` call may transform the buffer in place (the backend
        contract), so the only allocations are the buffer itself and
        whatever scratch the kernel keeps.
        """
        b = self.backend
        n = int(X.shape[0])
        q, m = self.n_features, self.block
        work = b.empty((n * nb, m), dtype=self.dtype)
        w3 = work.reshape(n, nb, m)
        if q < m:
            w3[:, :, q:] = 0
        w3[:, :, :q] = X.reshape(n, 1, q) * signs[:, 0, :q]
        work = b.fwht_rows(work)
        w3 = work.reshape(n, nb, m)
        w3 *= signs[:, 1, :]
        work = b.fwht_rows(w3.reshape(n * nb, m))
        w3 = work.reshape(n, nb, m)
        w3 *= signs[:, 2, :]
        work = b.fwht_rows(w3.reshape(n * nb, m))
        return work.reshape(n, nb * m)

    def _project(self, X: Any) -> Any:
        b = self.backend
        flat = self._chain(X, self.signs, self.n_blocks)
        if self._identity_slots:
            proj = flat[:, : self.dim]
        else:
            proj = b.take_columns(flat, self.src_slots)
        proj *= self.scales
        return proj

    def _encode(self, X: Any) -> Any:
        return self._activate(self._project(X))

    def _activate(self, proj: Any) -> Any:
        b = self.backend
        if self.activation == "linear":
            # proj may be a view into the (n, nb·m) work buffer; copy so the
            # caller doesn't retain the oversized allocation.
            return b.copy(proj)
        if self.activation == "sign":
            return b.where(
                proj >= 0.0,
                b.ones_like(proj),
                -b.ones_like(proj),
            )
        if self.activation == "tanh":
            return b.tanh(proj)
        return b.cos(proj)

    def _activate_dims(self, proj: Any, dims: np.ndarray) -> Any:
        # The plain activations are per-element, so the full-output path
        # applies unchanged to a column subset.
        return self._activate(proj)

    # --------------------------------------------------------- regeneration

    def encode_dims(self, X: Any, dims: np.ndarray) -> Any:
        """Encode only the selected output dimensions (``(n, len(dims))``).

        Runs the chain for just the blocks the selected slots live in, so
        refreshing a few regenerated columns never pays for all ``nb``
        blocks.
        """
        dims = self._check_dims(dims)
        b = self.backend
        if dims.size == 0:
            return b.zeros((np.asarray(X).shape[0], 0), dtype=self.dtype)
        X = self._check_input(X)
        m = self.block
        slots = self.src_slots[dims]
        blocks = np.unique(slots // m)
        flat = self._chain(
            X, b.take_rows(self.signs, blocks), int(blocks.size)
        )
        cols = np.searchsorted(blocks, slots // m) * m + slots % m
        proj = b.take_columns(flat, cols)
        proj *= b.take_rows(self.scales, dims)
        return self._activate_dims(proj, dims)

    def regenerate(self, dims: np.ndarray) -> None:
        """Redraw source slots and scales for the given output dimensions."""
        dims = self._check_dims(dims)
        if dims.size == 0:
            return
        b = self.backend
        self.src_slots[dims] = self._rng.integers(
            0, self._n_slots, size=dims.size
        )
        self._identity_slots = False
        b.set_rows(
            self.scales,
            dims,
            b.asarray(self._draw_scales(int(dims.size)), dtype=self.dtype),
        )
        self.regenerated_count += int(dims.size)

    def effective_dim(self) -> int:
        """Paper's effective dimensionality ``D* = D + total regenerated``."""
        return self.dim + self.regenerated_count


class FastfoodRBFEncoder(StructuredProjectionEncoder):
    """SORF-chain counterpart of :class:`RBFEncoder`.

    Applies the same random-Fourier map ``h = cos(y + c) · sin(y)`` as the
    dense RBF encoder, with ``y`` produced by the structured chain instead
    of a ``(D, q)`` matmul — computed as ``(sin(2y + c) − sin c) / 2`` so
    encoding pays one transcendental pass instead of two plus a product.

    Parameters match :class:`~repro.hdc.encoders.rbf.RBFEncoder`:
    ``bandwidth`` is the kernel-width knob (``σ = bandwidth/√q``).
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        bandwidth: float = 1.0,
        seed: SeedLike = None,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)
        super().__init__(
            n_features,
            dim,
            activation="linear",
            seed=seed,
            dtype=dtype,
            backend=backend,
        )
        b = self.backend
        # Phases are drawn after the signs/scales (fixed documented order so
        # same-seed encoders stay bit-identical across backends).
        self.phases = b.draw_uniform(
            self._rng, 0.0, 2.0 * np.pi, self.dim, self.dtype
        )
        self._sin_phases = b.sin(self.phases)

    def _sigma(self) -> float:
        return self.bandwidth / np.sqrt(self.n_features)

    def _activate(self, proj: Any) -> Any:
        b = self.backend
        out = b.sin(2.0 * proj + self.phases)
        out -= self._sin_phases
        out *= 0.5
        return out

    def _activate_dims(self, proj: Any, dims: np.ndarray) -> Any:
        b = self.backend
        out = b.sin(2.0 * proj + b.take_rows(self.phases, dims))
        out -= b.take_rows(self._sin_phases, dims)
        out *= 0.5
        return out

    def regenerate(self, dims: np.ndarray) -> None:
        """Redraw slots, scales and phases for the given output dimensions."""
        dims = self._check_dims(dims)
        if dims.size == 0:
            return
        super().regenerate(dims)
        b = self.backend
        fresh = b.draw_uniform(
            self._rng, 0.0, 2.0 * np.pi, dims.size, self.dtype
        )
        b.set_rows(self.phases, dims, fresh)
        b.set_rows(self._sin_phases, dims, b.sin(fresh))
