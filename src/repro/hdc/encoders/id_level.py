"""ID-level encoding — the classic record-based HDC encoder.

Each feature index gets a random bipolar *ID* hypervector and each quantised
feature magnitude a correlated *level* hypervector; a sample is encoded as the
bundle of ``bind(ID_f, Level(value_f))`` over features.  Included because the
paper notes DistHD "starts with encoding data points ... with existing
encoding methods depending on the data type", and record-based encoding is the
standard choice for categorical/sensor data.
"""

from __future__ import annotations

import numpy as np

from typing import Any

from repro.backend import BackendLike
from repro.hdc.encoders.base import Encoder
from repro.hdc.spaces import random_bipolar, random_level_hypervectors
from repro.utils.rng import SeedLike, as_rng, spawn_seed


class IDLevelEncoder(Encoder):
    """Record-based encoder: bundle of ID⊛Level bindings.

    Parameters
    ----------
    n_features, dim:
        Input and output sizes.
    n_levels:
        Number of quantisation levels for feature magnitudes.
    feature_range:
        ``(low, high)`` range used to quantise features; values outside are
        clipped.  Fit it from training data or standardise inputs first.
    seed:
        RNG seed.
    dtype, backend:
        Compute dtype and array backend of the encodings.
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        n_levels: int = 32,
        feature_range: tuple = (-3.0, 3.0),
        seed: SeedLike = None,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        super().__init__(n_features, dim, dtype=dtype, backend=backend)
        if n_levels < 2:
            raise ValueError(f"n_levels must be >= 2, got {n_levels}")
        low, high = (float(feature_range[0]), float(feature_range[1]))
        if not low < high:
            raise ValueError(f"feature_range must satisfy low < high, got {feature_range}")
        self.n_levels = int(n_levels)
        self.feature_range = (low, high)
        rng = as_rng(seed)
        self.id_vectors = random_bipolar(self.n_features, self.dim, spawn_seed(rng))
        self.level_vectors = random_level_hypervectors(
            self.n_levels, self.dim, spawn_seed(rng)
        )

    def quantize(self, X: Any) -> np.ndarray:
        """Map features to integer level indices in ``[0, n_levels)``."""
        low, high = self.feature_range
        X = self.backend.to_numpy(X)
        clipped = np.clip(np.asarray(X, dtype=np.float64), low, high)
        scaled = (clipped - low) / (high - low)
        return np.minimum((scaled * self.n_levels).astype(np.int64), self.n_levels - 1)

    def _encode(self, X: Any) -> Any:
        b = self.backend
        levels = self.quantize(X)  # (n, q)
        id_f = b.asarray(self.id_vectors, dtype=self.dtype)  # (q, D)
        lvl_bank = b.asarray(self.level_vectors, dtype=self.dtype)  # (L, D)
        n = levels.shape[0]
        out = b.zeros((n, self.dim), dtype=self.dtype)
        # bundle_f id_f * level(v_f), chunked so the (chunk, q, D) gather
        # stays within a ~256 MB working set at any problem size.
        itemsize = np.dtype(self.dtype).itemsize
        chunk = max(
            1, int(256_000_000 // max(self.n_features * self.dim * itemsize, 1))
        )
        for start in range(0, n, chunk):
            lvl = b.take_rows(lvl_bank, levels[start : start + chunk].ravel())
            lvl = lvl.reshape(-1, self.n_features, self.dim)  # (c, q, D)
            out[start : start + chunk] = b.einsum("qd,nqd->nd", id_f, lvl)
        return out
