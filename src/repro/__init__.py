"""DistHD reproduction — learner-aware dynamic encoding for HDC classification.

Reimplementation of Wang, Huang & Imani, *DistHD: A Learner-Aware Dynamic
Encoding Method for Hyperdimensional Classification* (DAC 2023), together
with every substrate its evaluation depends on: an HDC compute layer,
baseline learners (BaselineHD / NeuralHD / OnlineHD / MLP / SVM / kNN),
synthetic analogs of the five evaluation datasets, a hardware bit-flip noise
model, metrics, and an experiment pipeline.

Quick start::

    from repro import DistHDClassifier, load_dataset

    ds = load_dataset("ucihar", scale=0.05, seed=0)
    clf = DistHDClassifier(dim=500, iterations=10, seed=0)
    clf.fit(ds.train_x, ds.train_y)
    print(clf.score(ds.test_x, ds.test_y))
"""

from repro.core.config import DistHDConfig
from repro.core.disthd import DistHDClassifier
from repro.datasets.loaders import load_dataset
from repro.datasets.registry import list_datasets
from repro.persistence import load_model, save_model
from repro.version import __version__

__all__ = [
    "DistHDClassifier",
    "DistHDConfig",
    "load_dataset",
    "list_datasets",
    "load_model",
    "save_model",
    "__version__",
]
