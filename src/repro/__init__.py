"""DistHD reproduction — learner-aware dynamic encoding for HDC classification.

Reimplementation of Wang, Huang & Imani, *DistHD: A Learner-Aware Dynamic
Encoding Method for Hyperdimensional Classification* (DAC 2023), together
with every substrate its evaluation depends on: an HDC compute layer,
baseline learners (BaselineHD / NeuralHD / OnlineHD / MLP / SVM / kNN),
synthetic analogs of the five evaluation datasets, a hardware bit-flip noise
model, metrics, and an experiment pipeline.

Quick start — everything is addressed by name through two registries::

    from repro import list_models, make_model, run_experiment, load_dataset

    list_models()                        # ('baselinehd', 'disthd', ...)

    # One-call experiment: dataset analog + model + full metric suite.
    result = run_experiment(model="disthd", dataset="ucihar",
                            scale=0.05, model_params={"dim": 500})
    print(result.test_accuracy)

    # Or drive a model directly.
    ds = load_dataset("ucihar", scale=0.05, seed=0)
    clf = make_model("disthd", dim=500, iterations=10, seed=0)
    clf.fit(ds.train_x, ds.train_y)
    print(clf.score(ds.test_x, ds.test_y))

Incremental (streaming) learning is part of the estimator protocol: any
model with ``supports_streaming`` trains one mini-batch at a time::

    clf = make_model("disthd-stream", dim=256, seed=0)
    for batch_x, batch_y in ds.batches(64, seed=0):
        clf.partial_fit(batch_x, batch_y, classes=range(ds.n_classes))

Data-parallel training is one knob away: every HDC model accepts
``n_jobs``, and more than one worker routes ``fit`` through sharded
training (per-shard class memories merged by bundling — see
:mod:`repro.engine`)::

    clf = make_model("disthd", dim=500, n_jobs=4, seed=0).fit(X, y)

Serving is one call away: :func:`serve_model` fronts any fitted model
(or a persisted archive) with a micro-batching
:class:`~repro.serve.server.ModelServer` — concurrent requests coalesce
into bounded-latency batches, new versions hot-swap atomically, and
:mod:`repro.serve` adds drift-aware online adaptation on top (see
``docs/serving.md``)::

    with serve_model(clf) as server:
        labels = server.predict(rows)

See ``docs/api.md`` for the full facade (``compare``, ``ExperimentSpec``,
``save_model``/``load_model``) and the deprecation shims for pre-registry
import paths.
"""

from repro.api import (
    ExperimentSpec,
    build_model,
    compare,
    list_models,
    make_model,
    run_experiment,
    serve_model,
)
from repro.backend import get_backend, list_backends
from repro.core.config import DistHDConfig
from repro.engine import TrainingEngine, get_executor, shard_fit
from repro.core.disthd import DistHDClassifier
from repro.datasets.loaders import load_dataset
from repro.datasets.registry import list_datasets
from repro.persistence import load_model, save_model
from repro.version import __version__

__all__ = [
    "DistHDClassifier",
    "DistHDConfig",
    "ExperimentSpec",
    "TrainingEngine",
    "build_model",
    "compare",
    "get_backend",
    "get_executor",
    "list_backends",
    "list_datasets",
    "list_models",
    "load_dataset",
    "load_model",
    "make_model",
    "run_experiment",
    "save_model",
    "serve_model",
    "shard_fit",
    "__version__",
]
