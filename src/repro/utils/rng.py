"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).  This module
centralises the conversion so reproducibility behaves identically everywhere.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing :class:`~numpy.random.Generator` which is returned unchanged
        (so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng`` for a child component."""
    return int(rng.integers(0, 2**63 - 1))


def child_rngs(seed: SeedLike, n: int) -> Iterator[np.random.Generator]:
    """Yield ``n`` independent child generators derived from ``seed``.

    Children are independent of each other and of later draws from the
    parent, which keeps per-component streams stable when unrelated
    components are added to a pipeline.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_rng(seed)
    for _ in range(n):
        yield np.random.default_rng(spawn_seed(parent))


def permutation_for(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random permutation of ``range(n)`` as an index array."""
    return rng.permutation(n)


def bootstrap_indices(
    rng: np.random.Generator, n: int, size: Optional[int] = None
) -> np.ndarray:
    """Indices for a bootstrap resample of ``n`` items (``size`` defaults to n)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return rng.integers(0, n, size=n if size is None else size)
