"""Minimal logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace and never configures handlers on import; applications
opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the library namespace (``repro`` or ``repro.<name>``)."""
    full = ROOT_LOGGER_NAME if not name else f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(full)


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library root logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    has_stream = any(
        isinstance(h, logging.StreamHandler) and getattr(h, "_repro_console", False)
        for h in logger.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        handler._repro_console = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    return logger
