"""Array-validation helpers shared by estimators, encoders and metrics.

These mirror the checks scikit-learn performs in ``check_array`` but stay
deliberately small: they coerce to float64/int64 NumPy arrays, enforce shape
and finiteness, and raise uniform, descriptive ``ValueError`` messages.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def check_matrix(
    X,
    name: str = "X",
    *,
    dtype=np.float64,
    allow_empty: bool = False,
    ensure_finite: bool = True,
) -> np.ndarray:
    """Coerce ``X`` to a 2-D array and validate it.

    Raises ``ValueError`` for wrong dimensionality, empty input (unless
    ``allow_empty``) and non-finite entries (unless ``ensure_finite`` is off).
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if not allow_empty and (arr.shape[0] == 0 or arr.shape[1] == 0):
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    if ensure_finite and arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinity")
    return arr


def check_vector(
    y, name: str = "y", *, dtype=None, allow_empty: bool = False
) -> np.ndarray:
    """Coerce ``y`` to a 1-D array."""
    arr = np.asarray(y) if dtype is None else np.asarray(y, dtype=dtype)
    arr = np.ravel(arr)
    if not allow_empty and arr.shape[0] == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def check_paired(X, y, x_name: str = "X", y_name: str = "y") -> Tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and its label vector together."""
    X = check_matrix(X, x_name)
    y = check_vector(y, y_name)
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"{x_name} and {y_name} disagree on sample count: "
            f"{X.shape[0]} vs {y.shape[0]}"
        )
    return X, y


def check_labels(
    y, n_classes: Optional[int] = None, name: str = "y"
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate integer class labels.

    Returns ``(labels, classes)`` where ``labels`` is the validated int64
    vector and ``classes`` the sorted unique values.  When ``n_classes`` is
    given, labels must lie in ``[0, n_classes)``.
    """
    labels = check_vector(y, name)
    if labels.dtype.kind not in "iu":
        as_int = labels.astype(np.int64)
        if not np.array_equal(as_int, labels.astype(np.float64)):
            raise ValueError(f"{name} must contain integer class labels")
        labels = as_int
    labels = labels.astype(np.int64)
    classes = np.unique(labels)
    if n_classes is not None:
        if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
            raise ValueError(
                f"{name} must lie in [0, {n_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
    return labels, classes


def check_probability(p: float, name: str = "p") -> float:
    """Validate a probability-like scalar in [0, 1]."""
    value = float(p)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


# --------------------------------------------------------------- scalar knobs
#
# Constructor-parameter checks shared by DistHDConfig and the HDC baseline
# classifiers, so every model rejects a bad ``dim`` / ``lr`` / ``iterations``
# with the same message instead of five hand-rolled copies.


def check_positive_int(value, name: str) -> int:
    """Validate a strictly positive integer knob (``dim``, ``iterations``)."""
    if value is None or int(value) <= 0 or int(value) != value:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_positive_float(value, name: str) -> float:
    """Validate a strictly positive float knob (``lr``, ``bandwidth``)."""
    result = float(value)
    if result <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return result


def check_optional_positive_int(value, name: str) -> Optional[int]:
    """Validate a knob that is either ``None`` or a positive integer
    (``batch_size``, ``chunk_size``, ``convergence_patience``)."""
    if value is None:
        return None
    if int(value) <= 0 or int(value) != value:
        raise ValueError(f"{name} must be positive or None, got {value}")
    return int(value)


def check_unit_interval(value, name: str) -> float:
    """Validate a fraction-in-[0, 1] knob (``regen_rate``).

    Same range contract as :func:`check_probability`; this name keeps
    constructor-knob validation greppable alongside the other check_*
    knob helpers.
    """
    return check_probability(value, name)


def check_non_negative_float(value, name: str) -> float:
    """Validate a non-negative float knob (``convergence_tol``)."""
    result = float(value)
    if result < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return result


def check_convergence_params(patience, tol) -> Tuple[Optional[int], float]:
    """Validate the shared early-stopping pair (patience, tol)."""
    return (
        check_optional_positive_int(patience, "convergence_patience"),
        check_non_negative_float(tol, "convergence_tol"),
    )


def check_n_jobs(value, name: str = "n_jobs") -> Optional[int]:
    """Validate a worker-count knob: ``None`` (serial), ``-1`` (all cores),
    or a positive integer.  Resolution to an actual worker count happens in
    :func:`repro.engine.executor.resolve_n_jobs`."""
    if value is None:
        return None
    if int(value) != value or (int(value) <= 0 and int(value) != -1):
        raise ValueError(
            f"{name} must be None, -1, or a positive integer, got {value}"
        )
    return int(value)


def check_features_match(n_expected: int, n_got: int, who: str = "estimator") -> None:
    """Raise if an estimator trained on ``n_expected`` features sees ``n_got``."""
    if n_expected != n_got:
        raise ValueError(
            f"{who} was fit with {n_expected} features but received {n_got}"
        )
