"""Shared utilities: RNG plumbing, validation helpers, lightweight logging."""

from repro.utils.rng import as_rng, child_rngs, spawn_seed
from repro.utils.validation import (
    check_features_match,
    check_labels,
    check_matrix,
    check_paired,
    check_probability,
    check_vector,
)

__all__ = [
    "as_rng",
    "child_rngs",
    "spawn_seed",
    "check_features_match",
    "check_labels",
    "check_matrix",
    "check_paired",
    "check_probability",
    "check_vector",
]
