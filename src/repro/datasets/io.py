"""Dataset file I/O.

Two roles:

1. **Caching analogs** — ``save_dataset`` / ``load_dataset_file`` store a
   generated :class:`~repro.datasets.loaders.Dataset` as a flat ``.npz`` so
   sweeps across processes see the identical data.
2. **Real data** — ``load_from_arrays`` packages user-supplied feature/label
   matrices (e.g. the actual UCI downloads, when available) into the same
   :class:`Dataset` interface the rest of the library consumes, so every
   benchmark can be re-pointed at real data without code changes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.loaders import Dataset
from repro.datasets.preprocessing import StandardScaler
from repro.datasets.registry import DatasetSpec, get_spec
from repro.utils.validation import check_paired


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Write a dataset bundle to ``path`` (``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        name=dataset.spec.name,
        train_x=dataset.train_x,
        train_y=dataset.train_y,
        test_x=dataset.test_x,
        test_y=dataset.test_y,
        scale=np.float64(dataset.scale),
    )
    return path


def load_dataset_file(path: Union[str, Path]) -> Dataset:
    """Read a dataset bundle written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as data:
        spec = get_spec(str(data["name"]))
        return Dataset(
            spec=spec,
            train_x=np.asarray(data["train_x"]),
            train_y=np.asarray(data["train_y"]),
            test_x=np.asarray(data["test_x"]),
            test_y=np.asarray(data["test_y"]),
            scale=float(data["scale"]),
        )


def load_from_arrays(
    train_x,
    train_y,
    test_x,
    test_y,
    *,
    name: str = "custom",
    description: str = "user-supplied data",
    standardize: bool = True,
) -> Dataset:
    """Package user-supplied splits (e.g. the real UCI data) as a Dataset.

    Labels may be any integers; features are standardised with train-split
    statistics unless ``standardize=False``.
    """
    train_x, train_y = check_paired(train_x, train_y, "train_x", "train_y")
    test_x, test_y = check_paired(test_x, test_y, "test_x", "test_y")
    if train_x.shape[1] != test_x.shape[1]:
        raise ValueError(
            f"train and test disagree on feature count: "
            f"{train_x.shape[1]} vs {test_x.shape[1]}"
        )
    classes = np.unique(np.concatenate([train_y, test_y]))
    if standardize:
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
    spec = DatasetSpec(
        name=name,
        n_features=int(train_x.shape[1]),
        n_classes=int(classes.size),
        train_size=int(train_x.shape[0]),
        test_size=int(test_x.shape[0]),
        description=description,
        difficulty=0.5,  # unknown for real data; informational only
        structure="tabular",
    )
    return Dataset(
        spec=spec,
        train_x=train_x,
        train_y=train_y.astype(np.int64),
        test_x=test_x,
        test_y=test_y.astype(np.int64),
        scale=1.0,
    )
