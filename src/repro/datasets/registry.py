"""Table I of the paper, as a dataset registry.

Each :class:`DatasetSpec` records the published signature (feature count,
class count, train/test sizes, description) plus the generator parameters of
its synthetic analog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class DatasetSpec:
    """Published metadata for one evaluation dataset (paper Table I).

    Attributes
    ----------
    name:
        Registry key (lowercase).
    n_features, n_classes:
        Table-I ``n`` and ``k``.
    train_size, test_size:
        Published sample counts (the analogs scale these down by the
        loader's ``scale`` factor).
    description:
        Table-I description string.
    difficulty:
        Analog generator knob in (0, 1]: larger = more class overlap.
        Calibrated per dataset so HDC/DNN accuracies land near the paper's
        Fig. 4 band.
    structure:
        Which structural generator the analog uses (``"image"``, ``"imu"``,
        ``"audio"``, ``"tabular"``).
    """

    name: str
    n_features: int
    n_classes: int
    train_size: int
    test_size: int
    description: str
    difficulty: float
    structure: str


DATASETS: Dict[str, DatasetSpec] = {
    "mnist": DatasetSpec(
        name="mnist",
        n_features=784,
        n_classes=10,
        train_size=60_000,
        test_size=10_000,
        description="Handwritten Recognition",
        difficulty=0.45,
        structure="image",
    ),
    "ucihar": DatasetSpec(
        name="ucihar",
        n_features=561,
        n_classes=12,
        train_size=6_213,
        test_size=1_554,
        description="Mobile Activity Recognition",
        difficulty=0.35,
        structure="imu",
    ),
    "isolet": DatasetSpec(
        name="isolet",
        n_features=617,
        n_classes=26,
        train_size=6_238,
        test_size=1_559,
        description="Voice Recognition",
        difficulty=0.40,
        structure="audio",
    ),
    "pamap2": DatasetSpec(
        name="pamap2",
        n_features=54,
        n_classes=5,
        train_size=233_687,
        test_size=115_101,
        description="Activity Recognition (IMU)",
        difficulty=0.45,
        structure="imu",
    ),
    "diabetes": DatasetSpec(
        name="diabetes",
        n_features=49,
        n_classes=3,
        train_size=66_000,
        test_size=34_000,
        description="Outcomes of Diabetic Patients",
        difficulty=0.70,
        structure="tabular",
    ),
}


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[key]


def list_datasets() -> Tuple[str, ...]:
    """Registered dataset names, Table-I order."""
    return tuple(DATASETS)
