"""Dataset loading: the public ``load_dataset`` entry point.

``load_dataset("ucihar", scale=0.05, seed=0)`` generates the UCIHAR analog at
5% of the published sample counts, stratified into train/test, standardised
with train statistics, and packaged as a :class:`Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.datasets.generators import generate
from repro.datasets.preprocessing import StandardScaler
from repro.datasets.registry import DatasetSpec, get_spec
from repro.datasets.splits import stratified_split
from repro.utils.rng import SeedLike, as_rng, spawn_seed


@dataclass
class Dataset:
    """A ready-to-train dataset bundle.

    Attributes
    ----------
    spec:
        The Table-I :class:`~repro.datasets.registry.DatasetSpec`.
    train_x, train_y, test_x, test_y:
        Standardised splits.
    scale:
        Fraction of the published sample counts generated.
    """

    spec: DatasetSpec
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    scale: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_features(self) -> int:
        return int(self.train_x.shape[1])

    @property
    def n_classes(self) -> int:
        return int(self.spec.n_classes)

    @property
    def n_train(self) -> int:
        return int(self.train_x.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.test_x.shape[0])

    def subset(self, n_train: int, n_test: Optional[int] = None) -> "Dataset":
        """A smaller view (first ``n`` of each split) for quick experiments."""
        if n_train <= 0 or n_train > self.n_train:
            raise ValueError(
                f"n_train must lie in [1, {self.n_train}], got {n_train}"
            )
        n_test = self.n_test if n_test is None else n_test
        if n_test <= 0 or n_test > self.n_test:
            raise ValueError(
                f"n_test must lie in [1, {self.n_test}], got {n_test}"
            )
        return Dataset(
            spec=self.spec,
            train_x=self.train_x[:n_train],
            train_y=self.train_y[:n_train],
            test_x=self.test_x[:n_test],
            test_y=self.test_y[:n_test],
            scale=self.scale,
        )

    def batches(
        self, batch_size: int, *, seed: SeedLike = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches over the training split."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = as_rng(seed).permutation(self.n_train)
        for start in range(0, self.n_train, batch_size):
            idx = order[start : start + batch_size]
            yield self.train_x[idx], self.train_y[idx]


# Analog sample counts are the published counts times `scale`, with floors so
# tiny scales still give every class a few train/test samples.
_MIN_TRAIN_PER_CLASS = 12
_MIN_TEST_PER_CLASS = 4


def _scaled_counts(spec: DatasetSpec, scale: float) -> Tuple[int, int]:
    n_train = max(int(round(spec.train_size * scale)), _MIN_TRAIN_PER_CLASS * spec.n_classes)
    n_test = max(int(round(spec.test_size * scale)), _MIN_TEST_PER_CLASS * spec.n_classes)
    return n_train, n_test


def load_dataset(
    name: str,
    *,
    scale: float = 0.02,
    seed: SeedLike = None,
    standardize: bool = True,
) -> Dataset:
    """Generate the synthetic analog of a Table-I dataset.

    Parameters
    ----------
    name:
        One of :func:`repro.datasets.registry.list_datasets`.
    scale:
        Fraction of the published train/test sizes to generate (floored so
        each class keeps a dozen train samples).  ``scale=1.0`` reproduces
        the published sizes.
    seed:
        Generator seed; a given ``(name, scale, seed)`` always produces the
        identical dataset.
    standardize:
        Standardise features with train-split statistics (recommended for
        every model in the library).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    spec = get_spec(name)
    rng = as_rng(seed)
    n_train, n_test = _scaled_counts(spec, scale)

    X, y = generate(spec, n_train + n_test, seed=spawn_seed(rng))
    fraction = n_test / (n_train + n_test)
    train_x, train_y, test_x, test_y = stratified_split(
        X, y, test_fraction=fraction, seed=spawn_seed(rng)
    )
    if standardize:
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
    return Dataset(
        spec=spec,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        scale=float(scale),
    )
