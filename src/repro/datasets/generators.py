"""Per-dataset synthetic analogs.

Each generator wraps :func:`repro.datasets.synthetic.make_classification`
with structure that mimics the published dataset's modality:

- **image** (MNIST-like): sparse non-negative "stroke" patterns — latent
  samples are pushed through a ReLU-like rectification and sparsified so
  features behave like pixel intensities;
- **imu** (UCIHAR / PAMAP2-like): correlated channel groups with slow drift,
  mimicking windowed inertial statistics;
- **audio** (ISOLET-like): smooth spectral envelopes — neighbouring features
  correlate like adjacent filter-bank bins;
- **tabular** (DIABETES-like): mixed continuous/quantised columns with label
  noise, mimicking noisy clinical records (three-class readmission outcome).

The structural transforms perturb features *after* class geometry is fixed,
so class separability is still governed by the registry's ``difficulty``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.registry import DatasetSpec
from repro.datasets.synthetic import make_classification
from repro.utils.rng import as_rng, spawn_seed

Arrays = Tuple[np.ndarray, np.ndarray]


def _smooth_rows(X: np.ndarray, window: int) -> np.ndarray:
    """Moving-average each row (adjacent-feature correlation)."""
    if window <= 1:
        return X
    kernel = np.ones(window) / window
    padded = np.pad(X, ((0, 0), (window // 2, window - 1 - window // 2)), mode="edge")
    out = np.empty_like(X)
    for i in range(X.shape[0]):
        out[i] = np.convolve(padded[i], kernel, mode="valid")
    return out


def make_image_like(spec: DatasetSpec, n_samples: int, seed=None) -> Arrays:
    """MNIST-like analog: sparse, non-negative, pixel-ish features."""
    rng = as_rng(seed)
    X, y = make_classification(
        n_samples,
        spec.n_features,
        spec.n_classes,
        difficulty=spec.difficulty,
        n_prototypes=4,
        latent_dim=24,
        seed=spawn_seed(rng),
    )
    # Rectify to non-negative "ink" and sparsify the background.
    X = np.maximum(X - np.quantile(X, 0.55, axis=1, keepdims=True), 0.0)
    X /= max(np.abs(X).max(), 1e-9)
    return X, y


def make_imu_like(spec: DatasetSpec, n_samples: int, seed=None) -> Arrays:
    """UCIHAR/PAMAP2-like analog: correlated channels plus sensor drift."""
    rng = as_rng(seed)
    X, y = make_classification(
        n_samples,
        spec.n_features,
        spec.n_classes,
        difficulty=spec.difficulty,
        n_prototypes=3,
        latent_dim=min(spec.n_features, 12),
        seed=spawn_seed(rng),
    )
    X = _smooth_rows(X, window=3)
    # Per-sample sensor drift: a low-amplitude offset shared within channel
    # groups, as produced by uncalibrated IMUs.
    n_groups = max(spec.n_features // 9, 1)
    group_of = np.minimum(np.arange(spec.n_features) // 9, n_groups - 1)
    # Mild relative to the ~0.23 per-feature signal std the embedding leaves.
    drift = rng.normal(0.0, 0.05, size=(n_samples, n_groups))
    X += drift[:, group_of]
    return X, y


def make_audio_like(spec: DatasetSpec, n_samples: int, seed=None) -> Arrays:
    """ISOLET-like analog: smooth spectral-envelope features."""
    rng = as_rng(seed)
    X, y = make_classification(
        n_samples,
        spec.n_features,
        spec.n_classes,
        difficulty=spec.difficulty,
        n_prototypes=2,
        latent_dim=20,
        seed=spawn_seed(rng),
    )
    X = _smooth_rows(X, window=5)
    # Mild per-sample loudness variation (multiplicative gain).
    gains = rng.lognormal(0.0, 0.1, size=(n_samples, 1))
    return X * gains, y


def make_tabular_like(spec: DatasetSpec, n_samples: int, seed=None) -> Arrays:
    """DIABETES-like analog: mixed quantised columns plus label noise."""
    rng = as_rng(seed)
    X, y = make_classification(
        n_samples,
        spec.n_features,
        spec.n_classes,
        difficulty=spec.difficulty,
        n_prototypes=3,
        latent_dim=min(spec.n_features, 10),
        label_noise=0.05,
        class_weights=np.array([0.55, 0.3, 0.15])[: spec.n_classes],
        seed=spawn_seed(rng),
    )
    # Quantise half the columns to small integer codes (categorical-ish
    # clinical fields: counts, codes, binned lab values).
    n_quantised = spec.n_features // 2
    cols = rng.choice(spec.n_features, size=n_quantised, replace=False)
    X[:, cols] = np.round(X[:, cols] * 2.0) / 2.0
    return X, y


_STRUCTURES = {
    "image": make_image_like,
    "imu": make_imu_like,
    "audio": make_audio_like,
    "tabular": make_tabular_like,
}


def generate(spec: DatasetSpec, n_samples: int, seed=None) -> Arrays:
    """Generate ``n_samples`` points from the analog for ``spec``."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    try:
        maker = _STRUCTURES[spec.structure]
    except KeyError:
        raise ValueError(
            f"unknown structure {spec.structure!r}; "
            f"available: {sorted(_STRUCTURES)}"
        ) from None
    return maker(spec, n_samples, seed=seed)
