"""Core synthetic classification generator.

Class-conditional Gaussian mixtures on a low-dimensional latent manifold
embedded into the full feature space.  The construction:

1. draw each class a set of latent *prototype* centres in a
   ``latent_dim``-dimensional space, with inter-class distance controlled by
   ``difficulty`` (larger difficulty → centres closer → more confusable);
2. draw a random orthonormal-ish embedding ``latent_dim → n_features``;
3. each sample picks one of its class's prototypes, adds latent Gaussian
   noise, embeds, then adds ambient feature noise;
4. optionally flip a fraction of labels (label noise).

Multiple prototypes per class create multi-modal classes, which is what makes
top-2 accuracy meaningfully higher than top-1 — the phenomenon (paper Fig.
2(b)) that motivates DistHD's top-2 machinery.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_probability


def _class_centres(
    rng: np.random.Generator,
    n_classes: int,
    n_prototypes: int,
    latent_dim: int,
    difficulty: float,
) -> np.ndarray:
    """``(k, p, latent_dim)`` prototype centres with difficulty-scaled spread.

    Class base centres are drawn on a sphere whose radius shrinks as
    difficulty grows; prototypes scatter around their class base centre at a
    radius that grows with difficulty, so harder datasets have classes that
    interleave.
    """
    # Calibrated so a converged DistHD (D=400) lands at roughly
    # 0.97 / 0.86 / 0.80 / 0.74 / 0.70 test accuracy for difficulty
    # 0.3 / 0.5 / 0.6 / 0.7 / 0.8 on a 561-feature, 12-class analog,
    # with the paper's top-1 << top-2 ~ top-3 gap structure (Fig. 2(b)).
    radius = np.sqrt(latent_dim) * (0.22 + 1.4 * (1.0 - difficulty) ** 1.3)
    spread = 0.35 + 0.8 * difficulty
    base = rng.normal(0.0, 1.0, size=(n_classes, latent_dim))
    base *= radius / np.maximum(
        np.linalg.norm(base, axis=1, keepdims=True), 1e-9
    )
    offsets = rng.normal(0.0, spread, size=(n_classes, n_prototypes, latent_dim))
    return base[:, None, :] + offsets


def make_classification(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    difficulty: float = 0.4,
    latent_dim: Optional[int] = None,
    n_prototypes: int = 3,
    latent_noise: float = 1.0,
    ambient_noise: float = 0.15,
    label_noise: float = 0.0,
    class_weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate an ``(X, y)`` classification problem.

    Parameters
    ----------
    n_samples, n_features, n_classes:
        Output shape.
    difficulty:
        Class-overlap knob in (0, 1]; roughly, top-1 accuracy of a good
        classifier falls from ~0.99 at 0.1 to ~0.6 at 0.9.
    latent_dim:
        Manifold dimensionality (default ``min(n_features, 16)``).
    n_prototypes:
        Modes per class; >1 produces the top-1 ≪ top-2 gap.
    latent_noise:
        Within-prototype latent std.
    ambient_noise:
        Feature-space additive noise std.
    label_noise:
        Fraction of labels replaced by a uniformly random class.
    class_weights:
        Optional ``(k,)`` sampling weights (imbalanced classes).
    seed:
        RNG seed.

    Returns
    -------
    X : ``(n_samples, n_features)`` float64
    y : ``(n_samples,)`` int64 in ``[0, n_classes)``
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if n_features <= 0:
        raise ValueError(f"n_features must be positive, got {n_features}")
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if not 0.0 < difficulty <= 1.0:
        raise ValueError(f"difficulty must be in (0, 1], got {difficulty}")
    if n_prototypes <= 0:
        raise ValueError(f"n_prototypes must be positive, got {n_prototypes}")
    check_probability(label_noise, "label_noise")
    rng = as_rng(seed)

    latent = min(n_features, 16) if latent_dim is None else int(latent_dim)
    if not 0 < latent <= n_features:
        raise ValueError(
            f"latent_dim must be in (0, n_features], got {latent}"
        )

    if class_weights is None:
        probabilities = np.full(n_classes, 1.0 / n_classes)
    else:
        probabilities = np.asarray(class_weights, dtype=np.float64)
        if probabilities.shape != (n_classes,):
            raise ValueError(
                f"class_weights must have shape ({n_classes},), "
                f"got {probabilities.shape}"
            )
        if probabilities.min() < 0 or probabilities.sum() <= 0:
            raise ValueError("class_weights must be non-negative and sum > 0")
        probabilities = probabilities / probabilities.sum()

    centres = _class_centres(rng, n_classes, n_prototypes, latent, difficulty)
    y = rng.choice(n_classes, size=n_samples, p=probabilities)
    modes = rng.integers(0, n_prototypes, size=n_samples)
    latent_points = centres[y, modes] + rng.normal(
        0.0, latent_noise, size=(n_samples, latent)
    )

    # Random embedding with roughly orthonormal columns (QR of a Gaussian).
    gauss = rng.normal(0.0, 1.0, size=(n_features, latent))
    q, _ = np.linalg.qr(gauss)
    X = latent_points @ q.T
    X += rng.normal(0.0, ambient_noise, size=X.shape)

    if label_noise > 0:
        flip = rng.random(n_samples) < label_noise
        y = np.where(flip, rng.integers(0, n_classes, size=n_samples), y)

    return X, y.astype(np.int64)
