"""Train/test splitting utilities."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_paired, check_probability

Arrays4 = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def train_test_split(
    X, y, *, test_fraction: float = 0.2, seed: SeedLike = None
) -> Arrays4:
    """Shuffle and split into ``(train_x, train_y, test_x, test_y)``.

    Guarantees at least one sample on each side for any valid fraction.
    """
    X, y = check_paired(X, y)
    check_probability(test_fraction, "test_fraction")
    n = X.shape[0]
    if n < 2:
        raise ValueError(f"need at least 2 samples to split, got {n}")
    n_test = int(round(n * test_fraction))
    n_test = min(max(n_test, 1), n - 1)
    order = as_rng(seed).permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]


def stratified_split(
    X, y, *, test_fraction: float = 0.2, seed: SeedLike = None
) -> Arrays4:
    """Class-stratified split: each class contributes ~``test_fraction``.

    Classes with a single sample keep it on the training side.
    """
    X, y = check_paired(X, y)
    check_probability(test_fraction, "test_fraction")
    rng = as_rng(seed)
    test_parts = []
    train_parts = []
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        n_test = int(round(idx.size * test_fraction))
        if idx.size >= 2:
            n_test = min(max(n_test, 1), idx.size - 1)
        else:
            n_test = 0
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    test_idx = np.concatenate(test_parts)
    train_idx = np.concatenate(train_parts)
    rng.shuffle(test_idx)
    rng.shuffle(train_idx)
    if train_idx.size == 0 or test_idx.size == 0:
        raise ValueError("split produced an empty side; lower test_fraction")
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]


def stratified_assignments(
    y, n_groups: int, seed: SeedLike = None
) -> np.ndarray:
    """Per-sample group ids from a class-stratified round-robin deal.

    Each class's samples are shuffled once and dealt round-robin across
    ``n_groups``, so every group holds roughly ``1/n_groups`` of each
    class.  Deterministic for a fixed ``seed``.  This is the single
    stratification primitive behind k-fold CV folds
    (:func:`repro.pipeline.crossval.stratified_kfold_indices`) and
    sharded-fit shards (:func:`repro.engine.shard.shard_indices`) — the
    deal invariant lives here so the two cannot drift apart.
    """
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    y = np.asarray(y).ravel()
    rng = as_rng(seed)
    group_of = np.empty(y.shape[0], dtype=np.int64)
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        group_of[idx] = np.arange(idx.size) % n_groups
    return group_of
