"""Feature preprocessing: standardisation, min-max scaling, L2 rows.

HDC encoders assume roughly unit-scale inputs (the RBF projection's
frequency content depends on feature magnitude), so every pipeline in the
benchmarks standardises features with statistics fit on the training split
only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hdc.ops import normalize_rows
from repro.utils.validation import check_features_match, check_matrix

_EPS = 1e-12


class StandardScaler:
    """Per-feature zero-mean / unit-variance scaling (fit on train only)."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        X = check_matrix(X, "X")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std > _EPS, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = check_matrix(X, "X")
        check_features_match(self.mean_.shape[0], X.shape[1], "StandardScaler")
        return (X - self.mean_) / self.std_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = check_matrix(X, "X")
        check_features_match(self.mean_.shape[0], X.shape[1], "StandardScaler")
        return X * self.std_ + self.mean_


class MinMaxScaler:
    """Per-feature scaling to ``[low, high]`` (constant features map to low)."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        low, high = float(feature_range[0]), float(feature_range[1])
        if not low < high:
            raise ValueError(
                f"feature_range must satisfy low < high, got {feature_range}"
            )
        self.feature_range = (low, high)
        self.min_: Optional[np.ndarray] = None
        self.span_: Optional[np.ndarray] = None

    def fit(self, X) -> "MinMaxScaler":
        X = check_matrix(X, "X")
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.span_ = np.where(span > _EPS, span, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        X = check_matrix(X, "X")
        check_features_match(self.min_.shape[0], X.shape[1], "MinMaxScaler")
        low, high = self.feature_range
        return low + (X - self.min_) / self.span_ * (high - low)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


def l2_normalize(X) -> np.ndarray:
    """Row-wise L2 normalisation (zero rows pass through)."""
    return normalize_rows(check_matrix(X, "X"))
