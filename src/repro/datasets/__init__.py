"""Dataset substrate: Table-I registry and synthetic analogs.

The paper evaluates on five public datasets (MNIST, UCIHAR, ISOLET, PAMAP2,
DIABETES).  This environment has no network access, so each dataset has a
deterministic synthetic analog matching the Table-I signature — same feature
count ``n`` and class count ``k``, sample counts scalable via ``scale`` — with
difficulty calibrated so the phenomena DistHD exploits (top-1 < top-2 < top-3
accuracy, class confusability) hold.  See DESIGN.md §3 for the substitution
rationale.
"""

from repro.datasets.loaders import Dataset, load_dataset
from repro.datasets.preprocessing import (
    MinMaxScaler,
    StandardScaler,
    l2_normalize,
)
from repro.datasets.registry import DATASETS, DatasetSpec, get_spec, list_datasets
from repro.datasets.splits import stratified_split, train_test_split
from repro.datasets.synthetic import make_classification

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASETS",
    "MinMaxScaler",
    "StandardScaler",
    "get_spec",
    "l2_normalize",
    "list_datasets",
    "load_dataset",
    "make_classification",
    "stratified_split",
    "train_test_split",
]
