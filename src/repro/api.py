"""The top-level facade: names in, results out.

Everything the CLI, the examples, and most user code need lives here, built
on the two registries (:mod:`repro.models` and :mod:`repro.datasets`):

- :func:`make_model` / :func:`list_models` — build any registered
  classifier by name;
- :func:`run_experiment` — one declarative :class:`ExperimentSpec`
  (model name + dataset name + options) to one
  :class:`~repro.pipeline.experiment.ExperimentResult`;
- :func:`compare` — the Fig. 4-style multi-model comparison on one dataset.

Example::

    from repro import run_experiment, compare

    result = run_experiment(model="disthd", dataset="ucihar",
                            scale=0.05, model_params={"dim": 500})
    rows = compare(["disthd", "baselinehd", "mlp"], dataset="isolet",
                   scale=0.05, dim=256)
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.datasets.loaders import Dataset, load_dataset
from repro.models.registry import get_model_spec, list_models, make_model
from repro.noise.robustness import quality_loss_sweep
from repro.persistence import load_model, save_model
from repro.pipeline.experiment import ExperimentResult
from repro.pipeline.experiment import run_experiment as _run_on_dataset

__all__ = [
    "ExperimentSpec",
    "build_model",
    "compare",
    "list_models",
    "load_model",
    "make_model",
    "run_experiment",
    "save_model",
    "serve_model",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative (model, dataset, options) experiment description.

    Attributes
    ----------
    model:
        Registered model name (see :func:`list_models`).
    dataset:
        Registered dataset name (see
        :func:`repro.datasets.registry.list_datasets`).
    model_params:
        Hyper-parameter overrides forwarded to the model factory.
    scale:
        Fraction of the published sample counts to generate.
    seed:
        Seed for the dataset analog and (when the model declares a ``seed``
        hyper-parameter and ``model_params`` doesn't override it) the model.
    noise_bits:
        When set (1, 2, 4 or 8), additionally run a Fig. 8-style bit-flip
        robustness sweep at that memory precision; results land in
        ``result.extras`` as ``quality_loss@<rate>`` / ``noisy_acc@<rate>``
        plus ``quantized_clean_acc`` (the zero-flip reference at that
        precision, which quality losses are measured against).
    error_rates:
        Bit-flip rates for the robustness sweep.
    inference_repeats:
        Repeat test-split prediction, report the fastest run.
    backend / dtype:
        Compute backend name and hot-path dtype for models that declare the
        corresponding hyper-parameters (the HDC family); ``None`` leaves the
        model's own defaults in place.  An explicit entry in
        ``model_params`` always wins.
    encoder:
        Encoder spec (see :func:`repro.hdc.encoders.make_encoder` —
        ``"rbf"``, ``"fastfood-rbf"``, ...) for models that declare an
        ``encoder`` hyper-parameter; ``None`` keeps each model's own
        default.  ``model_params`` wins as usual.
    n_jobs:
        Parallel workers for models that declare an ``n_jobs``
        hyper-parameter (the sharding-capable HDC family): more than one
        worker routes their ``fit`` through data-parallel
        :func:`~repro.engine.shard.shard_fit`.  ``None`` keeps the
        model's own default (serial); ``model_params`` wins as usual.
    """

    model: str = "disthd"
    dataset: str = "ucihar"
    model_params: Mapping[str, object] = field(default_factory=dict)
    scale: float = 0.02
    seed: int = 0
    noise_bits: Optional[int] = None
    error_rates: Tuple[float, ...] = (0.01, 0.05, 0.10)
    inference_repeats: int = 1
    backend: Optional[str] = None
    dtype: Optional[str] = None
    encoder: Optional[str] = None
    n_jobs: Optional[int] = None

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)


def _coerce_spec(
    spec: Union[ExperimentSpec, Mapping, None], overrides: Mapping
) -> ExperimentSpec:
    if spec is None:
        spec = ExperimentSpec()
    elif isinstance(spec, Mapping):
        spec = ExperimentSpec(**spec)
    elif isinstance(spec, str):
        # run_experiment("disthd", dataset="ucihar") convenience form.
        spec = ExperimentSpec(model=spec)
    elif not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "spec must be an ExperimentSpec, a mapping, or a model name; "
            f"got {type(spec).__name__}"
        )
    if overrides:
        valid = {f.name for f in fields(ExperimentSpec)}
        unknown = set(overrides) - valid
        if unknown:
            raise TypeError(
                f"unknown experiment options {sorted(unknown)}; "
                f"valid: {sorted(valid)}"
            )
        spec = spec.with_overrides(**overrides)
    return spec


def build_model(name: str, params: Mapping = (), *, seed: Optional[int] = None):
    """``make_model`` plus seed injection.

    Forwards ``params`` to the registered factory; when the model declares a
    ``seed`` hyper-parameter and ``params`` doesn't set one, ``seed`` is
    injected so experiments are reproducible by default (models without a
    seed knob, e.g. kNN, are left alone).
    """
    params = dict(params)
    if (
        seed is not None
        and "seed" not in params
        and "seed" in get_model_spec(name).param_names()
    ):
        params["seed"] = seed
    return make_model(name, **params)


def run_experiment(
    spec: Union[ExperimentSpec, Mapping, str, None] = None,
    *,
    data: Optional[Dataset] = None,
    **overrides,
) -> ExperimentResult:
    """Run one (model, dataset) experiment described by ``spec``.

    ``spec`` may be an :class:`ExperimentSpec`, a mapping of its fields, a
    bare model name, or omitted entirely with fields passed as keywords::

        run_experiment(model="disthd", dataset="isolet", scale=0.05)

    Pass ``data=`` to reuse an already-generated :class:`Dataset` (its name
    must still be given for the report row via ``dataset``).  Returns the
    full :class:`~repro.pipeline.experiment.ExperimentResult` metric record.
    """
    spec = _coerce_spec(spec, overrides)
    dataset = (
        data if data is not None
        else load_dataset(spec.dataset, scale=spec.scale, seed=spec.seed)
    )
    params = dict(spec.model_params)
    declared = get_model_spec(spec.model).param_names()
    for knob in ("backend", "dtype", "encoder", "n_jobs"):
        value = getattr(spec, knob)
        if value is not None and knob in declared and knob not in params:
            params[knob] = value
    if (
        spec.noise_bits is not None
        and "bits" in declared
        and "bits" not in params
    ):
        # Quantised deployments store at their own precision; keep it in
        # step with the sweep precision (an explicit model_params["bits"]
        # mismatch is surfaced by perturb_classifier instead).
        params["bits"] = spec.noise_bits
    model = build_model(spec.model, params, seed=spec.seed)
    result = _run_on_dataset(
        model, dataset,
        model_name=spec.model,
        inference_repeats=spec.inference_repeats,
    )
    if spec.noise_bits is not None:
        points = quality_loss_sweep(
            model, dataset.test_x, dataset.test_y,
            bits=spec.noise_bits, error_rates=spec.error_rates,
            seed=spec.seed,
        )
        for point in points:
            result.extras[f"quality_loss@{point.error_rate:g}"] = (
                point.quality_loss
            )
            result.extras[f"noisy_acc@{point.error_rate:g}"] = (
                point.noisy_accuracy
            )
        if points:
            result.extras["quantized_clean_acc"] = points[0].clean_accuracy
    return result


def serve_model(
    model=None,
    *,
    path=None,
    max_batch_size: int = 64,
    max_wait_ms: float = 2.0,
    **server_options,
):
    """Front a fitted model with a micro-batching :class:`ModelServer`.

    Pass either a fitted model object (``model=``) or a
    :func:`save_model` archive path (``path=``, or a ``str``/``Path`` as
    the positional argument).  Returns a started
    :class:`~repro.serve.server.ModelServer` — use it as a context
    manager or ``close()`` it when done::

        from repro import serve_model

        with serve_model(path="disthd-v1.npz", max_wait_ms=2.0) as server:
            labels = server.predict(rows)     # coalesced into batches
            server.deploy("disthd-v2.npz")    # atomic hot-swap
            print(server.stats())

    ``max_batch_size`` / ``max_wait_ms`` bound the micro-batching
    throughput/latency trade-off; remaining keyword options forward to
    the :class:`~repro.serve.server.ModelServer` constructor.  See
    ``docs/serving.md``.
    """
    from repro.serve.server import ModelServer

    if (model is None) == (path is None):
        raise TypeError("serve_model needs exactly one of model= or path=")
    return ModelServer(
        model if model is not None else path,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        **server_options,
    )


#: One entry of :func:`compare`'s model list: a registered name, a
#: ``(label, name)`` pair, or ``(label, name, params)``.
ModelRef = Union[str, Tuple[str, str], Tuple[str, str, Mapping]]


def _normalize_ref(ref: ModelRef) -> Tuple[str, str, Dict[str, object]]:
    if isinstance(ref, str):
        return ref, ref, {}
    if isinstance(ref, Sequence) and 2 <= len(ref) <= 3:
        label, name = str(ref[0]), str(ref[1])
        params = dict(ref[2]) if len(ref) == 3 else {}
        return label, name, params
    raise TypeError(
        "each model must be a name, (label, name) or (label, name, params); "
        f"got {ref!r}"
    )


def compare(
    models: Sequence[ModelRef],
    dataset: Union[str, Dataset] = "ucihar",
    *,
    scale: float = 0.02,
    seed: int = 0,
    **options,
) -> List[ExperimentResult]:
    """Run several models against one dataset (the Fig. 4 shape).

    ``models`` entries are registered names, optionally as
    ``(label, name)`` / ``(label, name, params)`` tuples so one model can
    appear at several operating points::

        compare([
            "disthd",
            ("BaselineHD (D=4k)", "baselinehd", {"dim": 4000}),
        ], dataset="mnist", scale=0.01)

    The dataset is generated once and shared; extra keyword ``options``
    (e.g. ``noise_bits``, ``inference_repeats``) apply to every run.
    Returns one :class:`~repro.pipeline.experiment.ExperimentResult` per
    entry, in input order.
    """
    if isinstance(dataset, Dataset):
        data, dataset_name = dataset, dataset.name
    else:
        data = load_dataset(dataset, scale=scale, seed=seed)
        dataset_name = str(dataset)
    results: List[ExperimentResult] = []
    for ref in models:
        label, name, params = _normalize_ref(ref)
        spec = ExperimentSpec(
            model=name, dataset=dataset_name, model_params=params,
            scale=scale, seed=seed, **options,
        )
        result = run_experiment(spec, data=data)
        result.model_name = label
        results.append(result)
    return results
