"""Report formatting: the benchmark harness prints paper-style tables.

Plain-text/markdown only (no plotting dependency); every figure bench prints
the series the figure plots so the shape comparison with the paper is a
visual diff of numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_markdown_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render dict rows as a GitHub-markdown table.

    Column order follows ``columns`` when given, else the key order of the
    first row; missing cells render as ``-``.
    """
    if not rows:
        raise ValueError("cannot format an empty table")
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = "| " + " | ".join(cols) + " |"
    rule = "|" + "|".join("---" for _ in cols) + "|"
    lines = [header, rule]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c), precision) for c in cols) + " |"
        )
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence,
    ys: Sequence,
    *,
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 4,
) -> str:
    """Render one figure series as aligned ``x → y`` lines."""
    if len(xs) != len(ys):
        raise ValueError(
            f"series lengths disagree: {len(xs)} xs vs {len(ys)} ys"
        )
    lines = [f"{name}  ({x_label} → {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x, precision):>10} → {_fmt(y, precision)}")
    return "\n".join(lines)


def format_comparison(
    title: str,
    results: Dict[str, Dict[str, object]],
    *,
    columns: Sequence[str],
    precision: int = 4,
) -> str:
    """Render a {model: metrics} mapping as a titled markdown table."""
    rows: List[Dict[str, object]] = []
    for model, metrics in results.items():
        rows.append({"model": model, **{c: metrics.get(c) for c in columns}})
    table = format_markdown_table(
        rows, columns=["model", *columns], precision=precision
    )
    return f"### {title}\n{table}"
