"""Experiment orchestration: run models on datasets, sweep, report."""

from repro.pipeline.crossval import (
    CrossValResult,
    cross_validate,
    stratified_kfold_indices,
)
from repro.pipeline.experiment import ExperimentResult, run_experiment
from repro.pipeline.grid import GridSearchResult, grid_search, parameter_grid
from repro.pipeline.report import format_markdown_table, format_series

__all__ = [
    "CrossValResult",
    "ExperimentResult",
    "GridSearchResult",
    "cross_validate",
    "format_markdown_table",
    "format_series",
    "grid_search",
    "parameter_grid",
    "run_experiment",
    "stratified_kfold_indices",
]
