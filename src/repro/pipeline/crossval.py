"""K-fold cross-validation.

The paper reports single train/test splits (Table I fixes them); cross
validation is the natural extension for users bringing their own data, and
the benchmark harness uses it to put error bars on close comparisons.

Folds are independent (a fresh classifier per fold), so ``n_jobs`` fans
them across the engine's process pool; fold order — and therefore every
reported statistic — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.datasets.splits import stratified_assignments
from repro.engine.executor import Executor, executor_map
from repro.models.registry import make_model
from repro.utils.rng import SeedLike
from repro.utils.validation import check_paired


def stratified_kfold_indices(
    y: np.ndarray, n_splits: int, seed: SeedLike = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for stratified k-fold CV.

    Each class's samples are shuffled once and dealt round-robin across
    folds, so every fold holds roughly ``1/n_splits`` of each class.
    """
    if n_splits < 2:
        raise ValueError(f"n_splits must be >= 2, got {n_splits}")
    y = np.asarray(y).ravel()
    fold_of = stratified_assignments(y, n_splits, seed=seed)
    for fold in range(n_splits):
        test_idx = np.flatnonzero(fold_of == fold)
        train_idx = np.flatnonzero(fold_of != fold)
        if test_idx.size == 0 or train_idx.size == 0:
            raise ValueError(
                f"fold {fold} is empty; lower n_splits (have "
                f"{y.shape[0]} samples)"
            )
        yield train_idx, test_idx


@dataclass
class CrossValResult:
    """Per-fold scores plus summary statistics."""

    scores: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrossValResult(mean={self.mean:.4f}, std={self.std:.4f}, k={len(self.scores)})"


def _fit_score_fold(factory, params, X, y, fold) -> float:
    """Worker body: build, fit and score one fold.

    Module-level so folds pickle into process pools; the factory slot
    carries either a registered model name (with params) or a callable.
    The full ``(X, y)`` is bound once with :func:`functools.partial` and
    each task carries only its ``(train_idx, test_idx)`` pair — transport
    of the dataset is bounded by the pool's chunk count rather than
    growing with ``k`` re-sliced copies (at small ``k`` the volumes are
    comparable; the slicing now happens worker-side either way).
    """
    train_idx, test_idx = fold
    model = (
        make_model(factory, **params) if isinstance(factory, str)
        else factory()
    )
    model.fit(X[train_idx], y[train_idx])
    return float(model.score(X[test_idx], y[test_idx]))


def cross_validate(
    factory: Union[str, Callable[[], object]],
    X,
    y,
    *,
    n_splits: int = 5,
    seed: SeedLike = None,
    model_params: Optional[Mapping[str, object]] = None,
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> CrossValResult:
    """Stratified k-fold accuracy of ``factory()``-built classifiers.

    ``factory`` may also be a registered model name; ``model_params`` are
    then forwarded to :func:`repro.models.make_model` per fold.  A fresh
    classifier is built per fold, so no state leaks across folds.

    ``n_jobs`` runs folds in parallel on the engine executor (``-1`` =
    all cores); an explicit ``executor`` overrides it.  Callable factories
    that cannot be pickled fall back to serial execution.
    """
    params: Mapping[str, object] = {}
    if isinstance(factory, str):
        params = dict(model_params or {})
    elif model_params is not None:
        raise ValueError(
            "model_params is only valid with a registered model name"
        )
    X, y = check_paired(X, y)
    folds = list(stratified_kfold_indices(y, n_splits, seed))
    scores = executor_map(
        partial(_fit_score_fold, factory, params, X, y),
        folds,
        n_jobs=n_jobs,
        executor=executor,
    )
    return CrossValResult(scores=list(scores))
