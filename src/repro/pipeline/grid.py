"""Grid search, matching the paper's "common practice of grid search to
identify the best hyper-parameters for each model".

Models may be passed as factories or as registered names; a name with no
explicit ``space`` is swept over the registry's declared hyper-parameter
grid (:meth:`repro.models.ModelSpec.default_grid`)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.datasets.splits import stratified_split
from repro.models.registry import default_hyperparam_grid, make_model
from repro.utils.rng import SeedLike


def parameter_grid(space: Dict[str, Sequence]) -> Iterator[Dict[str, object]]:
    """Yield every combination of the per-key value lists (sorted keys).

    Examples
    --------
    >>> list(parameter_grid({"a": [1, 2], "b": ["x"]}))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not space:
        yield {}
        return
    keys = sorted(space)
    for values in itertools.product(*(space[k] for k in keys)):
        yield dict(zip(keys, values))


@dataclass
class GridSearchResult:
    """Best configuration found plus the full score table."""

    best_params: Dict[str, object]
    best_score: float
    all_results: List[Dict[str, object]] = field(default_factory=list)


def grid_search(
    factory: Union[str, Callable[..., object]],
    space: Optional[Dict[str, Sequence]] = None,
    X=None,
    y=None,
    *,
    validation_fraction: float = 0.25,
    seed: SeedLike = None,
) -> GridSearchResult:
    """Exhaustive grid search with a held-out validation split.

    Parameters
    ----------
    factory:
        Callable building a fresh classifier from keyword parameters
        (e.g. ``lambda **p: DistHDClassifier(**p)``), or a registered model
        name resolved through :func:`repro.models.make_model`.
    space:
        ``{param: [values...]}`` grid.  ``None`` with a named model uses
        the registry's declared default grid.
    X, y:
        Training data; a stratified validation split is carved out once and
        shared by all candidates.
    validation_fraction:
        Fraction held out for scoring.
    seed:
        Split seed.
    """
    if isinstance(factory, str):
        name = factory
        factory = lambda **p: make_model(name, **p)  # noqa: E731
        if space is None:
            space = default_hyperparam_grid(name)
    if space is None:
        raise ValueError(
            "space is required when factory is not a registered model name"
        )
    if X is None or y is None:
        raise ValueError("X and y are required")
    train_x, train_y, val_x, val_y = stratified_split(
        X, y, test_fraction=validation_fraction, seed=seed
    )
    best_params: Dict[str, object] = {}
    best_score = -1.0
    table: List[Dict[str, object]] = []
    for params in parameter_grid(space):
        model = factory(**params)
        model.fit(train_x, train_y)
        score = float(model.score(val_x, val_y))
        table.append({**params, "score": score})
        if score > best_score:
            best_score = score
            best_params = dict(params)
    return GridSearchResult(
        best_params=best_params, best_score=best_score, all_results=table
    )
