"""Grid search, matching the paper's "common practice of grid search to
identify the best hyper-parameters for each model".

Models may be passed as factories or as registered names; a name with no
explicit ``space`` is swept over the registry's declared hyper-parameter
grid (:meth:`repro.models.ModelSpec.default_grid`).

Candidate fits are independent, so ``n_jobs`` (or an explicit
``executor``) fans them across the engine's process pool — results and
tie-breaking are identical to the serial sweep because candidate order is
preserved.  Unpicklable factories (local lambdas) fall back to serial
execution automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.datasets.splits import stratified_split
from repro.engine.executor import Executor, executor_map
from repro.models.registry import default_hyperparam_grid, make_model
from repro.utils.rng import SeedLike


def parameter_grid(space: Dict[str, Sequence]) -> Iterator[Dict[str, object]]:
    """Yield every combination of the per-key value lists (sorted keys).

    Examples
    --------
    >>> list(parameter_grid({"a": [1, 2], "b": ["x"]}))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not space:
        yield {}
        return
    keys = sorted(space)
    for values in itertools.product(*(space[k] for k in keys)):
        yield dict(zip(keys, values))


@dataclass
class GridSearchResult:
    """Best configuration found plus the full score table."""

    best_params: Dict[str, object]
    best_score: float
    all_results: List[Dict[str, object]] = field(default_factory=list)


def _fit_score_candidate(factory, train_x, train_y, val_x, val_y, params) -> float:
    """Worker body: build, fit and score one grid candidate.

    Module-level so candidate evaluations pickle into process pools; the
    factory slot carries either a registered model name or a callable.
    The data arguments are bound once with :func:`functools.partial`, so
    transport of the shared split is bounded by the pool's chunk count —
    a win when candidates outnumber workers several-fold (chunks hold
    multiple candidates); with few candidates per worker it matches the
    old per-task shipping.
    """
    model = (
        make_model(factory, **params) if isinstance(factory, str)
        else factory(**params)
    )
    model.fit(train_x, train_y)
    return float(model.score(val_x, val_y))


def grid_search(
    factory: Union[str, Callable[..., object]],
    space: Optional[Dict[str, Sequence]] = None,
    X=None,
    y=None,
    *,
    validation_fraction: float = 0.25,
    seed: SeedLike = None,
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> GridSearchResult:
    """Exhaustive grid search with a held-out validation split.

    Parameters
    ----------
    factory:
        Callable building a fresh classifier from keyword parameters
        (e.g. ``lambda **p: DistHDClassifier(**p)``), or a registered model
        name resolved through :func:`repro.models.make_model`.
    space:
        ``{param: [values...]}`` grid.  ``None`` with a named model uses
        the registry's declared default grid.
    X, y:
        Training data; a stratified validation split is carved out once and
        shared by all candidates.
    validation_fraction:
        Fraction held out for scoring.
    seed:
        Split seed.
    n_jobs:
        Candidate fits to run in parallel (``None``/1 serial, ``-1`` all
        cores).  Registered-name factories parallelise cleanly; factories
        that cannot be pickled run serial regardless.
    executor:
        Pre-built :class:`~repro.engine.executor.Executor` to reuse across
        searches (overrides ``n_jobs``).
    """
    if isinstance(factory, str) and space is None:
        space = default_hyperparam_grid(factory)
    if space is None:
        raise ValueError(
            "space is required when factory is not a registered model name"
        )
    if X is None or y is None:
        raise ValueError("X and y are required")
    train_x, train_y, val_x, val_y = stratified_split(
        X, y, test_fraction=validation_fraction, seed=seed
    )
    candidates = list(parameter_grid(space))
    scores = executor_map(
        partial(_fit_score_candidate, factory, train_x, train_y, val_x, val_y),
        candidates,
        n_jobs=n_jobs,
        executor=executor,
    )
    best_params: Dict[str, object] = {}
    best_score = -1.0
    table: List[Dict[str, object]] = []
    for params, score in zip(candidates, scores):
        table.append({**params, "score": score})
        if score > best_score:
            best_score = score
            best_params = dict(params)
    return GridSearchResult(
        best_params=best_params, best_score=best_score, all_results=table
    )
