"""The experiment runner: fit a classifier on a dataset, measure everything.

``run_experiment`` is the single entry point the benchmark harness builds
on: it times training and inference, computes accuracy / top-k accuracy /
sensitivity / specificity, and captures model-specific extras (iterations to
convergence, effective dimensionality) in one result record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.datasets.loaders import Dataset
from repro.models.registry import make_model
from repro.metrics.classification import accuracy, topk_accuracy
from repro.metrics.sensitivity import sensitivity_specificity


@dataclass
class ExperimentResult:
    """Everything measured from one (model, dataset) run.

    Attributes
    ----------
    model_name / dataset_name:
        Identification for report rows.
    test_accuracy / train_accuracy:
        Top-1 accuracies.
    top2_accuracy / top3_accuracy:
        Top-k test accuracies (``None`` when k exceeds the class count).
    sensitivity / specificity:
        Macro one-vs-rest rates on the test split.
    train_seconds / inference_seconds:
        Wall-clock fit and full-test-split predict times.
    extras:
        Model-specific values (e.g. ``n_iterations``, ``effective_dim``).
    """

    model_name: str
    dataset_name: str
    test_accuracy: float
    train_accuracy: float
    top2_accuracy: Optional[float]
    top3_accuracy: Optional[float]
    sensitivity: float
    specificity: float
    train_seconds: float
    inference_seconds: float
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table formatting."""
        row: Dict[str, object] = {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "test_acc": self.test_accuracy,
            "train_acc": self.train_accuracy,
            "top2_acc": self.top2_accuracy,
            "top3_acc": self.top3_accuracy,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
            "train_s": self.train_seconds,
            "infer_s": self.inference_seconds,
        }
        row.update(self.extras)
        return row


def _model_extras(model) -> Dict[str, float]:
    extras: Dict[str, float] = {}
    if hasattr(model, "n_iterations_"):
        extras["n_iterations"] = float(model.n_iterations_)
    encoder = getattr(model, "encoder_", None)
    if encoder is not None and hasattr(encoder, "effective_dim"):
        extras["effective_dim"] = float(encoder.effective_dim())
        extras["physical_dim"] = float(encoder.dim)
    return extras


def run_experiment(
    model,
    dataset: Dataset,
    *,
    model_name: Optional[str] = None,
    inference_repeats: int = 1,
) -> ExperimentResult:
    """Fit ``model`` on ``dataset`` and measure the full metric suite.

    Parameters
    ----------
    model:
        Any library classifier (fresh, unfitted).
    dataset:
        A :class:`~repro.datasets.loaders.Dataset`.
    model_name:
        Report label; defaults to the class name.
    inference_repeats:
        Repeat the test-split prediction and report the fastest run
        (latency noise floor).
    """
    if inference_repeats <= 0:
        raise ValueError(
            f"inference_repeats must be positive, got {inference_repeats}"
        )
    name = model_name if model_name is not None else type(model).__name__

    start = time.perf_counter()
    model.fit(dataset.train_x, dataset.train_y)
    train_seconds = time.perf_counter() - start

    inference_seconds = float("inf")
    predictions = None
    for _ in range(inference_repeats):
        start = time.perf_counter()
        predictions = model.predict(dataset.test_x)
        inference_seconds = min(inference_seconds, time.perf_counter() - start)

    test_acc = accuracy(dataset.test_y, predictions)
    train_acc = accuracy(dataset.train_y, model.predict(dataset.train_x))

    scores = model.decision_scores(dataset.test_x)
    dense_test_y = np.searchsorted(model.classes_, dataset.test_y)
    n_classes = scores.shape[1]
    top2 = topk_accuracy(dense_test_y, scores, 2) if n_classes >= 2 else None
    top3 = topk_accuracy(dense_test_y, scores, 3) if n_classes >= 3 else None

    rates = sensitivity_specificity(dataset.test_y, predictions)
    return ExperimentResult(
        model_name=name,
        dataset_name=dataset.name,
        test_accuracy=test_acc,
        train_accuracy=train_acc,
        top2_accuracy=top2,
        top3_accuracy=top3,
        sensitivity=rates["sensitivity"],
        specificity=rates["specificity"],
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        extras=_model_extras(model),
    )


def run_suite(
    models: Union[Dict[str, Callable[[], object]], Sequence[str]],
    dataset: Dataset,
    **kwargs,
) -> Dict[str, ExperimentResult]:
    """Run several models on one dataset; keys label the report rows.

    ``models`` is either ``{label: factory}`` or a sequence of registered
    model names (each resolved through :func:`repro.models.make_model`).
    """
    if not isinstance(models, dict):
        models = {
            name: (lambda n=name: make_model(n)) for name in models
        }
    return {
        name: run_experiment(factory(), dataset, model_name=name, **kwargs)
        for name, factory in models.items()
    }
