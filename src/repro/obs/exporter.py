"""Stdlib HTTP exporter: ``/metrics`` (Prometheus text) + ``/healthz``.

A thin ``http.server.ThreadingHTTPServer`` wrapper so ``repro serve`` /
``repro chaos`` can expose live metrics without any dependency.  Bound
to localhost by default; ``port=0`` picks an ephemeral port (read it
back from :attr:`MetricsExporter.port`).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsExporter"]


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in MetricsExporter.
    registry: MetricsRegistry
    healthy: Callable[[], bool]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.registry.render_prometheus().encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/healthz":
            ok = True
            try:
                ok = bool(self.healthy())
            except Exception:  # noqa: BLE001 - health probe must not 500 raw
                ok = False
            body = (b"ok\n" if ok else b"unhealthy\n")
            self.send_response(200 if ok else 503)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = b"not found\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # keep scrapes out of stderr


class MetricsExporter:
    """Serve a registry over HTTP on a daemon thread.

    >>> exporter = MetricsExporter(registry, port=0)
    >>> exporter.port  # the bound ephemeral port
    >>> exporter.close()
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        healthy: Optional[Callable[[], bool]] = None,
    ) -> None:
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"registry": registry, "healthy": staticmethod(
                healthy if healthy is not None else lambda: True
            )},
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
