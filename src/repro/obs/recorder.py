"""Crash flight recorder: a bounded ring of recent spans and events.

Every process in the serving stack (client/server process, fleet
supervisor, each fleet worker) keeps a :class:`FlightRecorder` — a
fixed-capacity ring buffer of the most recent finished spans and
problem events.  On a notable exit (worker death observed by the
supervisor, circuit-breaker trip, CRC-corruption exit, graceful
shutdown) the ring is dumped to a JSONL artifact so the last seconds
before the event are reconstructable after the process is gone.

Dump format (``FLIGHT_SCHEMA`` = 1): one JSON object per line.  The
first line is a header::

    {"type": "header", "schema": 1, "pid": ..., "role": ...,
     "reason": ..., "dumped_unix": ..., "n_spans": ..., "n_events": ...}

followed by the ring contents in arrival order, each tagged
``{"type": "span", ...}`` or ``{"type": "event", ...}``.
:func:`validate_dump` checks a file against this schema and is what the
chaos harness and the obs-smoke CI job assert with.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.ids import wall_now
from repro.obs.ring import ShardedRing

__all__ = ["FLIGHT_SCHEMA", "FlightRecorder", "validate_dump"]

#: Flight-dump schema version (the header's ``schema`` field).
FLIGHT_SCHEMA = 1

#: Header fields every dump must carry.
_HEADER_FIELDS = (
    "type", "schema", "pid", "role", "reason", "dumped_unix",
    "n_spans", "n_events",
)

#: Span-record fields every dumped span must carry.
_SPAN_FIELDS = (
    "trace_id", "span_id", "name", "role", "pid", "start_unix",
    "duration_s", "status",
)


def _record_time(record: Dict[str, object]) -> float:
    """Merge key for dump ordering: a span sorts at its *end* time (when
    it became recordable), an event at its timestamp."""
    if record.get("type") == "span":
        start = record.get("start_unix", 0.0)
        duration = record.get("duration_s", 0.0)
        return float(start) + float(duration)  # type: ignore[arg-type]
    return float(record.get("unix", 0.0))  # type: ignore[arg-type]


class FlightRecorder:
    """Bounded in-memory ring of spans + events with JSONL dumping.

    ``role`` labels the owning process ("server", "supervisor",
    "worker-3", ...); it lands in the dump header and every event.

    The ring is a :class:`repro.obs.ring.ShardedRing`: workers and the
    supervisor record spans/events from several threads, so pushes take
    an uncontended per-thread shard lock, not one shared ring lock
    (which measurably convoys the request path at full sampling — see
    ``docs/observability.md``).

    ``span_source`` — an optional zero-arg callable returning recent
    finished span dicts (:meth:`repro.obs.trace.Tracer.finished`).  When
    set, :meth:`dump` *pulls* the newest ``capacity`` spans from it and
    merges them with the directly recorded ring, so the tracer's span
    hot path never pays a second per-span recorder push.  Processes
    without a tracer (fleet workers) keep feeding :meth:`record_span`
    directly.
    """

    def __init__(
        self,
        role: str = "server",
        *,
        capacity: int = 512,
        span_source: Optional[Callable[[], List[Dict[str, object]]]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.role = role
        self.capacity = int(capacity)
        self.span_source = span_source
        self._ring = ShardedRing(
            self.capacity, lock_name="FlightRecorder._shard_lock"
        )

    def record_span(self, span: Dict[str, object]) -> None:
        record = dict(span)
        record["type"] = "span"
        self._ring.push(record, "span")

    def record_spans(self, spans: List[Dict[str, object]]) -> None:
        """Record many finished spans under one shard-lock acquisition.

        The request hot path finishes spans a batch at a time; taking the
        lock once per batch instead of once per span keeps the recorder
        feed off the serving critical path.
        """
        records = []
        for span in spans:
            record = dict(span)
            record["type"] = "span"
            records.append(record)
        self._ring.push_many(records, "span")

    def record_event(
        self, kind: str, detail: str = "", **attrs: object
    ) -> None:
        """A problem/lifecycle event (worker death, breaker trip, ...)."""
        record: Dict[str, object] = {
            "type": "event",
            "kind": kind,
            "detail": detail,
            "role": self.role,
            "pid": os.getpid(),
            "unix": wall_now(),
        }
        if attrs:
            record["attrs"] = attrs
        self._ring.push(record, "event")

    def snapshot(self) -> List[Dict[str, object]]:
        return self._ring.snapshot()

    def counts(self) -> Tuple[int, int]:
        """(total spans recorded, total events recorded) — lifetime, not
        just what the ring currently retains."""
        counts = self._ring.counts()
        return counts.get("span", 0), counts.get("event", 0)

    def dump(
        self,
        target: Union[str, Path],
        reason: str,
    ) -> Path:
        """Write the ring as JSONL.  ``target`` may be a directory (a
        unique ``flight-<role>-<pid>-<reason>.jsonl`` name is chosen) or
        an explicit file path.  Returns the written path.

        Dumping is best-effort by design at call sites (crash paths must
        not raise), but this method itself raises on I/O errors so tests
        can assert them — wrap in try/except where failure is tolerable.

        With a ``span_source`` attached, the newest ``capacity`` spans
        it returns are pulled *now*, tagged, and merged with the
        directly recorded ring in time order (span end time vs event
        time; ties keep arrival order).  The header's ``n_spans`` then
        counts directly recorded spans (lifetime) plus the pulled spans
        in this dump.
        """
        records = self.snapshot()
        n_spans, n_events = self.counts()
        if self.span_source is not None:
            pulled = []
            for span in self.span_source()[-self.capacity:]:
                record = dict(span)
                record["type"] = "span"
                pulled.append(record)
            if pulled:
                n_spans += len(pulled)
                records = sorted(
                    records + pulled, key=_record_time
                )
        target = Path(target)
        if target.is_dir() or not target.suffix:
            target.mkdir(parents=True, exist_ok=True)
            safe_reason = "".join(
                c if c.isalnum() or c in "-_" else "-" for c in reason
            )
            target = target / (
                f"flight-{self.role}-{os.getpid()}-{safe_reason}.jsonl"
            )
        header = {
            "type": "header",
            "schema": FLIGHT_SCHEMA,
            "pid": os.getpid(),
            "role": self.role,
            "reason": reason,
            "dumped_unix": wall_now(),
            "n_spans": n_spans,
            "n_events": n_events,
        }
        lines = [json.dumps(header)]
        lines.extend(json.dumps(r) for r in records)
        target.write_text("\n".join(lines) + "\n")
        return target


def validate_dump(path: Union[str, Path]) -> Dict[str, object]:
    """Parse + schema-check a flight dump; raises ``ValueError`` on any
    violation.  Returns ``{"header": ..., "spans": [...], "events":
    [...]}`` for further inspection."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty flight dump")
    try:
        records = [json.loads(line) for line in lines if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: unparseable JSONL: {exc}") from exc
    header = records[0]
    if header.get("type") != "header":
        raise ValueError(f"{path}: first record is not a header: {header}")
    missing = [f for f in _HEADER_FIELDS if f not in header]
    if missing:
        raise ValueError(f"{path}: header missing fields {missing}")
    if header["schema"] != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path}: schema {header['schema']} != {FLIGHT_SCHEMA}"
        )
    spans: List[Dict[str, object]] = []
    events: List[Dict[str, object]] = []
    for i, record in enumerate(records[1:], start=2):
        kind = record.get("type")
        if kind == "span":
            bad = [f for f in _SPAN_FIELDS if f not in record]
            if bad:
                raise ValueError(
                    f"{path}:{i}: span record missing fields {bad}"
                )
            spans.append(record)
        elif kind == "event":
            if "kind" not in record or "unix" not in record:
                raise ValueError(
                    f"{path}:{i}: event record missing kind/unix"
                )
            events.append(record)
        else:
            raise ValueError(f"{path}:{i}: unknown record type {kind!r}")
    return {"header": header, "spans": spans, "events": events}


def find_dumps(directory: Union[str, Path]) -> List[Path]:
    """All flight-dump files under ``directory`` (non-recursive), sorted
    by name for determinism."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("flight-*.jsonl"))


__all__.append("find_dumps")
