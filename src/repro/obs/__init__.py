"""``repro.obs`` — zero-dependency observability for the serving stack.

Three pillars (see ``docs/observability.md``):

- **Tracing** (:mod:`repro.obs.trace`): trace/span IDs with
  monotonic-clock durations, propagated client → ``MicroBatcher`` →
  ``ModelServer`` → ``FleetServer`` dispatcher → worker process, with a
  deterministic sampling knob that costs one float compare when off.
- **Metrics** (:mod:`repro.obs.registry`): a typed
  counter/gauge/histogram registry rendered as Prometheus text-format
  or JSON, served by :mod:`repro.obs.exporter` (`/metrics`,
  `/healthz`) and the ``repro obs`` CLI subcommand.
- **Flight recorder** (:mod:`repro.obs.recorder`): a bounded ring of
  recent spans/events per process, dumped as JSONL on worker death,
  breaker trip, CRC-corruption exit, or graceful shutdown.

All entropy and wall-clock reads live in :mod:`repro.obs.ids` — the one
module the ``seed-determinism`` lint rule exempts.

:class:`Observability` bundles the three pillars for one process; the
serving classes accept one via their ``obs=`` keyword.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.obs.exporter import MetricsExporter
from repro.obs.recorder import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    find_dumps,
    validate_dump,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    complete_retried_traces,
    span_record,
    span_tree,
)

__all__ = [
    "Observability",
    "Tracer",
    "TraceContext",
    "Span",
    "NOOP_SPAN",
    "span_record",
    "span_tree",
    "complete_retried_traces",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "MetricsExporter",
    "FlightRecorder",
    "FLIGHT_SCHEMA",
    "validate_dump",
    "find_dumps",
]


class Observability:
    """The per-process observability bundle: tracer + registry + recorder.

    ``sample_rate`` feeds the tracer; ``flight_dir`` (optional) is where
    :meth:`dump_flight` writes JSONL artifacts — when unset, dumps are
    skipped silently so crash paths stay cheap by default.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 0.0,
        flight_dir: Optional[Union[str, Path]] = None,
        role: str = "server",
        registry: Optional[MetricsRegistry] = None,
        max_spans: int = 2048,
        recorder_capacity: int = 512,
    ) -> None:
        self.role = role
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(sample_rate, max_spans=max_spans)
        # Pull-model feed: the recorder pulls recent spans from the
        # tracer's ring at dump time, so finishing a span on the request
        # hot path never pays a second recorder push.
        self.recorder = FlightRecorder(
            role,
            capacity=recorder_capacity,
            span_source=self.tracer.finished,
        )
        self.flight_dir = Path(flight_dir) if flight_dir is not None else None

    def dump_flight(self, reason: str) -> Optional[Path]:
        """Best-effort flight dump into ``flight_dir``; returns the path
        written, or None when no dir is configured or the write failed
        (crash paths must never raise out of here)."""
        if self.flight_dir is None:
            return None
        try:
            return self.recorder.dump(self.flight_dir, reason)
        except OSError:
            return None

    def serve_metrics(
        self, *, host: str = "127.0.0.1", port: int = 0,
        healthy: Optional[object] = None,
    ) -> MetricsExporter:
        """Start an HTTP exporter for this bundle's registry."""
        return MetricsExporter(
            self.registry, host=host, port=port, healthy=healthy,  # type: ignore[arg-type]
        )
