"""A sharded, bounded ring for hot-path telemetry records.

The tracer span ring and the flight-recorder ring are multi-producer
structures fed from every serving thread: 16+ load-generator threads
finishing root spans plus the batcher thread finishing a whole group per
flush.  A single shared lock there *convoys* — the measured cost of full
tracing was almost entirely contended-lock overhead, not span building
(see ``docs/observability.md``).  :class:`ShardedRing` removes the
contention structurally:

- records land in one of :data:`N_SHARDS` per-shard deques, each behind
  its own lock; threads are assigned shards round-robin on first use
  (cached in a ``threading.local``), so for realistic thread counts the
  hot-path ``push`` takes an *uncontended* lock;
- a global ``itertools.count`` stamps every record with a sequence
  number (``count.__next__`` is a single C call — atomic under the GIL),
  so :meth:`snapshot` can merge the shards back into exact arrival
  order;
- every shard keeps the full ``maxlen`` bound and :meth:`snapshot` trims
  the merged view to the newest ``maxlen`` records, so the visible
  semantics are identical to one bounded deque: the newest ``maxlen``
  records, oldest first.  (Worst-case retained memory is
  ``N_SHARDS * maxlen`` records when many threads push heavily — the
  price of uncontended appends; snapshots never show more than
  ``maxlen``.)

Lifetime per-kind counts (spans vs events for the flight recorder) are
kept per shard and summed on demand.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

from repro.analysis.annotations import guarded_by, make_lock

__all__ = ["N_SHARDS", "ShardedRing"]

#: Shards per ring.  Threads beyond this wrap around and share pairwise
#: — still near-uncontended for the thread counts the serving stack runs.
N_SHARDS = 16

#: Round-robin shard assignment, cached per thread.  Module-global so a
#: thread keeps one index across every ring it touches.
_assign = itertools.count()
_tls = threading.local()


def _shard_index() -> int:
    idx = getattr(_tls, "shard_idx", None)
    if idx is None:
        idx = next(_assign) % N_SHARDS
        _tls.shard_idx = idx
    return idx


@guarded_by("_lock", "_items", "_counts")
class _Shard:
    """One lock + bounded deque of ``(seq, record)`` pairs."""

    __slots__ = ("_lock", "_items", "_counts")

    def __init__(self, maxlen: int, lock_name: str) -> None:
        self._lock = make_lock(lock_name)
        self._items: Deque[Tuple[int, Dict[str, object]]] = deque(
            maxlen=maxlen
        )
        self._counts: Dict[str, int] = {}

    def push(self, seq: int, record: Dict[str, object], kind: str) -> None:
        with self._lock:
            self._items.append((seq, record))
            self._counts[kind] = self._counts.get(kind, 0) + 1

    def push_many(
        self,
        pairs: List[Tuple[int, Dict[str, object]]],
        kind: str,
    ) -> None:
        with self._lock:
            self._items.extend(pairs)
            self._counts[kind] = self._counts.get(kind, 0) + len(pairs)

    def snapshot(self) -> List[Tuple[int, Dict[str, object]]]:
        with self._lock:
            return list(self._items)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class ShardedRing:
    """Bounded multi-producer ring with per-thread shards.

    ``lock_name`` is the :data:`~repro.analysis.annotations.LOCK_ORDER`
    name the shard locks register under (they are leaf locks: nothing
    else is ever acquired while one is held).
    """

    def __init__(self, maxlen: int, *, lock_name: str) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = int(maxlen)
        self._seq = itertools.count()
        self._shards = tuple(
            _Shard(self.maxlen, lock_name) for _ in range(N_SHARDS)
        )

    def push(self, record: Dict[str, object], kind: str = "record") -> None:
        """Append one record (uncontended for <= :data:`N_SHARDS` threads)."""
        self._shards[_shard_index()].push(next(self._seq), record, kind)

    def push_many(
        self,
        records: Sequence[Dict[str, object]],
        kind: str = "record",
    ) -> None:
        """Append many records under one shard-lock acquisition."""
        if not records:
            return
        seq = self._seq
        pairs = [(next(seq), record) for record in records]
        self._shards[_shard_index()].push_many(pairs, kind)

    def snapshot(self) -> List[Dict[str, object]]:
        """The newest ``maxlen`` records in exact arrival order."""
        merged: List[Tuple[int, Dict[str, object]]] = []
        for shard in self._shards:
            merged.extend(shard.snapshot())
        merged.sort(key=lambda pair: pair[0])
        if len(merged) > self.maxlen:
            merged = merged[-self.maxlen:]
        return [record for _, record in merged]

    def counts(self) -> Dict[str, int]:
        """Lifetime pushed-record counts by ``kind`` (not just retained)."""
        total: Dict[str, int] = {}
        for shard in self._shards:
            for kind, n in shard.counts().items():
                total[kind] = total.get(kind, 0) + n
        return total
