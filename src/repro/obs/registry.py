"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency Prometheus-style metrics.  A process owns one
:class:`MetricsRegistry`; components create instruments up front
(``registry.counter(...)``) and mutate them on the hot path.  All
instruments share the registry's single lock (``MetricsRegistry._lock``
in :data:`repro.analysis.annotations.LOCK_ORDER`) — mutation is a
lock + float add, cheap enough for per-request use, and a scraper
snapshotting mid-hammer always sees internally consistent values.

Label support is deliberately minimal: an instrument created with
``labelnames`` is a *family*; ``family.labels(kind="x")`` returns (and
memoises) the child instrument.  Histograms use fixed bucket
boundaries chosen at creation (cumulative ``_bucket{le=...}`` counts
plus ``_sum``/``_count``, Prometheus semantics).

Rendering: :meth:`MetricsRegistry.render_prometheus` (text exposition
format, suitable for ``/metrics``) and :meth:`render_json` (one dict
per instrument, suitable for the ``repro obs`` CLI).  Registered
*collectors* (zero-arg callables) run at the start of every render so
pull-style values — per-worker queue depth, pending request count —
refresh at scrape time without a background thread.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.annotations import guarded_by, make_lock

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram boundaries for request/stage latencies, in seconds:
#: half-millisecond floor to multi-second tail, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_LabelValues = Tuple[str, ...]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _label_suffix(labelnames: Sequence[str], values: _LabelValues) -> str:
    if not labelnames:
        return ""
    pairs = ", ".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


@guarded_by("_lock", "_value")
class Counter:
    """Monotonically increasing counter."""

    prom_type = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def _render_value(self) -> float:
        with self._lock:
            return self._value


@guarded_by("_lock", "_value")
class Gauge:
    """Instantaneous value; settable both ways."""

    prom_type = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def _render_value(self) -> float:
        with self._lock:
            return self._value


@guarded_by("_lock", "_bucket_counts", "_sum", "_count")
class Histogram:
    """Fixed-boundary histogram with Prometheus cumulative-bucket output."""

    prom_type = "histogram"

    def __init__(
        self, lock: threading.Lock, buckets: Sequence[float]
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.buckets = bounds
        self._lock = lock
        # Per-bucket (non-cumulative) counts; the +Inf bucket is implicit
        # as the last slot.  Cumulated at render time.
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan: bucket lists are ~a dozen entries, and the scan is
        # done outside the lock.
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Observe a batch of values under one lock acquisition.

        The serving hot path completes requests a micro-batch at a time;
        per-value ``observe`` calls would take the registry lock once per
        request on the batcher thread."""
        if not values:
            return
        n_buckets = len(self.buckets)
        indices = []
        total = 0.0
        for value in values:
            value = float(value)
            index = n_buckets
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            indices.append(index)
            total += value
        with self._lock:
            for index in indices:
                self._bucket_counts[index] += 1
            self._sum += total
            self._count += len(indices)

    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts keyed by upper bound, plus sum/count."""
        with self._lock:
            counts = list(self._bucket_counts)
            total, n = self._sum, self._count
        cumulative: List[int] = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": {
                **{
                    _format_value(b): cumulative[i]
                    for i, b in enumerate(self.buckets)
                },
                "+Inf": cumulative[-1],
            },
            "sum": total,
            "count": n,
        }


_Instrument = object  # Counter | Gauge | Histogram


class _Family:
    """One registered metric name: either a single unlabelled instrument
    or a set of labelled children created on demand via :meth:`labels`."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        prom_type: str,
        factory: Callable[[], _Instrument],
        labelnames: Tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help_text
        self.type = prom_type
        self._factory = factory
        self.labelnames = labelnames
        self._children: Dict[_LabelValues, _Instrument] = {}
        if not labelnames:
            self._children[()] = factory()

    def labels(self, **labels: str):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        return self._registry._child(self, key)

    def _unlabelled(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                f"use .labels(...)"
            )
        return self._children[()]


class MetricsRegistry:
    """Process-wide instrument registry with pull-time collectors."""

    @guarded_by("_lock", "_families", "_collectors")
    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock")
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------ creation

    def _register(
        self,
        name: str,
        help_text: str,
        prom_type: str,
        factory: Callable[[], _Instrument],
        labelnames: Sequence[str],
    ):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.type != prom_type or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"type or labels"
                    )
                family = existing
            else:
                family = _Family(
                    self, name, help_text, prom_type, factory,
                    tuple(labelnames),
                )
                self._families[name] = family
        if family.labelnames:
            return family
        return family._unlabelled()

    def counter(
        self, name: str, help_text: str = "",
        labelnames: Sequence[str] = (),
    ):
        """An unlabelled :class:`Counter`, or a family when labelled."""
        return self._register(
            name, help_text, "counter", lambda: Counter(self._lock),
            labelnames,
        )

    def gauge(
        self, name: str, help_text: str = "",
        labelnames: Sequence[str] = (),
    ):
        return self._register(
            name, help_text, "gauge", lambda: Gauge(self._lock), labelnames,
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ):
        bounds = tuple(buckets)
        return self._register(
            name, help_text, "histogram",
            lambda: Histogram(self._lock, bounds), labelnames,
        )

    def _child(self, family: _Family, key: _LabelValues):
        with self._lock:
            child = family._children.get(key)
            if child is None:
                child = family._factory()
                family._children[key] = child
            return child

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a zero-arg callable run at the start of every render
        (scrape-time refresh for gauges mirroring live state)."""
        with self._lock:
            self._collectors.append(fn)

    # ----------------------------------------------------------- rendering

    def _collect(self) -> List[_Family]:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()  # outside the lock: collectors mutate instruments
        with self._lock:
            return list(self._families.values())

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._collect():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.type}")
            with self._lock:
                children = list(family._children.items())
            for key, instrument in children:
                suffix = _label_suffix(family.labelnames, key)
                if isinstance(instrument, Histogram):
                    snap = instrument.snapshot()
                    for bound, count in snap["buckets"].items():  # type: ignore[union-attr]
                        le = _label_suffix(
                            tuple(family.labelnames) + ("le",),
                            key + (bound,),
                        )
                        lines.append(f"{family.name}_bucket{le} {count}")
                    lines.append(
                        f"{family.name}_sum{suffix} "
                        f"{_format_value(float(snap['sum']))}"  # type: ignore[arg-type]
                    )
                    lines.append(f"{family.name}_count{suffix} {snap['count']}")
                else:
                    value = instrument._render_value()  # type: ignore[union-attr]
                    lines.append(
                        f"{family.name}{suffix} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    def render_json(self) -> Dict[str, object]:
        """One entry per metric name: type, help, and sample values."""
        out: Dict[str, object] = {}
        for family in self._collect():
            with self._lock:
                children = list(family._children.items())
            samples = []
            for key, instrument in children:
                labels = dict(zip(family.labelnames, key))
                if isinstance(instrument, Histogram):
                    samples.append(
                        {"labels": labels, **instrument.snapshot()}
                    )
                else:
                    samples.append(
                        {"labels": labels,
                         "value": instrument._render_value()}  # type: ignore[union-attr]
                    )
            out[family.name] = {
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        return out

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)
