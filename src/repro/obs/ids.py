"""Entropy and wall-clock primitives for the observability layer.

This module is the **only** place in ``repro.obs`` (and the serving
stack's observability hooks) allowed to touch non-deterministic sources:
``os.urandom`` seeds the identifier generators and ``time.time``
provides wall-clock span timestamps.  Everything else in ``repro.obs``
imports from here, which lets the ``seed-determinism`` lint rule scope
the observability tree while exempting exactly one file (see
``repro.analysis.rules.seed_determinism``).

Identifiers are *counter-advanced from a random base*: each process
draws one random 128-bit trace base and 64-bit span base at import (and
redraws after ``fork``), then advances an atomic counter per id.  That
keeps ids unique across processes (two processes collide only if their
random base ranges overlap within the handful of ids each draws —
negligible at 64/128 bits) while costing an integer add + format
instead of an ``os.urandom`` syscall per span, which matters at full
sampling on the request hot path.

Span *durations* are measured with ``time.perf_counter`` (monotonic) at
the call sites; only the absolute ``start_unix`` anchor comes from the
wall clock, so traces can be correlated across processes and with
external logs.
"""

from __future__ import annotations

import itertools
import os
import time

__all__ = ["new_trace_id", "new_span_id", "wall_now", "process_id"]

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1


def _reseed() -> None:
    """Draw fresh id bases + counters (at import and after ``fork``)."""
    global _trace_base, _span_base, _trace_counter, _span_counter, _pid
    _trace_base = int.from_bytes(os.urandom(16), "big")
    _span_base = int.from_bytes(os.urandom(8), "big")
    # Fresh counters so a forked child never replays its parent's ids.
    _trace_counter = itertools.count()
    _span_counter = itertools.count()
    _pid = os.getpid()


_reseed()
if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython on POSIX
    os.register_at_fork(after_in_child=_reseed)


def new_trace_id() -> str:
    """A unique 128-bit trace identifier as 32 lowercase hex chars."""
    # itertools.count.__next__ is a single C call — atomic under the GIL.
    return "%032x" % ((_trace_base + next(_trace_counter)) & _MASK128)


def new_span_id() -> str:
    """A unique 64-bit span identifier as 16 lowercase hex chars."""
    return "%016x" % ((_span_base + next(_span_counter)) & _MASK64)


def wall_now() -> float:
    """Wall-clock seconds since the epoch (for span ``start_unix``)."""
    return time.time()


def process_id() -> int:
    """This process's pid, cached at import / post-fork.

    ``os.getpid()`` is a real syscall; span finish paths stamp a pid per
    record, so the cached value keeps it off the hot path.  The
    ``register_at_fork`` hook above refreshes it in children.
    """
    return _pid
