"""Causal tracing: trace/span identifiers, contexts, and the ``Tracer``.

A *trace* is one logical request; a *span* is one timed stage of it
(queue wait, batch coalesce, dispatch, encode, score, retry ...).
Spans are plain dicts so they pickle across worker pipes and serialise
straight into the flight recorder:

``{"trace_id", "span_id", "parent_id", "name", "role", "pid",
   "start_unix", "duration_s", "status", "attrs"}``

``start_unix`` is wall-clock (via :mod:`repro.obs.ids`, the one entropy
module) so spans correlate across processes; ``duration_s`` is measured
with the monotonic ``time.perf_counter`` so it is immune to clock steps.

Propagation uses :class:`TraceContext`, a picklable named tuple
``(trace_id, parent_span_id, sampled)`` that rides the existing request
tuples: client → ``MicroBatcher`` → ``ModelServer`` → ``FleetServer``
dispatcher → worker process.  Worker processes do not need a
:class:`Tracer` — they build span dicts with :func:`span_record` and
ship them back in the response metadata for the supervisor to
:meth:`Tracer.ingest`.

Sampling is deterministic (an accumulator, not a coin flip): at rate
``r`` every ``1/r``-th root span is sampled, so benches and tests are
reproducible and the tracer consumes no entropy beyond the IDs of the
spans it actually records.  With ``sample_rate=0`` every call returns a
shared no-op span without taking a lock.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Set

from repro.obs.ids import new_span_id, new_trace_id, process_id, wall_now
from repro.obs.ring import ShardedRing

__all__ = [
    "TraceContext",
    "Span",
    "NOOP_SPAN",
    "Tracer",
    "span_record",
    "root_record",
    "span_tree",
    "complete_retried_traces",
]


class TraceContext(NamedTuple):
    """Picklable propagation token: ride this over queues and pipes."""

    trace_id: str
    parent_span_id: Optional[str]
    sampled: bool


#: Shared empty ``attrs`` dict for spans that never set any — finishing
#: a span must not allocate a throwaway dict per record.  Consumers
#: treat span dicts as read-only; anything that wants to annotate a
#: finished record must replace ``attrs``, not mutate it.
_EMPTY_ATTRS: Dict[str, object] = {}


class Span:
    """A live, in-progress span.  Call :meth:`end` (or use ``with``)."""

    __slots__ = (
        "_tracer", "trace_id", "span_id", "parent_id", "name", "role",
        "attrs", "start_unix", "_start_perf", "_done",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        parent_id: Optional[str],
        name: str,
        role: str,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.role = role
        # Deferred: most spans carry no attrs, so the common case must
        # not allocate a dict (this constructor is per-request work).
        self.attrs = dict(attrs) if attrs else None
        self.start_unix = wall_now()
        self._start_perf = time.perf_counter()
        self._done = False

    @property
    def sampled(self) -> bool:
        return True

    @property
    def context(self) -> TraceContext:
        """Context for children of this span (propagate downstream)."""
        return TraceContext(self.trace_id, self.span_id, True)

    def end(self, status: str = "ok", **attrs: object) -> None:
        """Finish the span; idempotent (the first call wins)."""
        if self._done:
            return
        self._done = True
        duration = time.perf_counter() - self._start_perf
        if attrs:
            if self.attrs is None:
                self.attrs = dict(attrs)
            else:
                self.attrs.update(attrs)
        self._tracer._finish({
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "role": self.role,
            "pid": process_id(),
            "start_unix": self.start_unix,
            "duration_s": duration,
            "status": status,
            # Attr-less spans share one empty dict (treat as immutable).
            "attrs": self.attrs if self.attrs is not None else _EMPTY_ATTRS,
        })

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.end("error" if exc_type is not None else "ok")


class _NoopSpan:
    """Shared do-nothing span returned for unsampled / disabled traces."""

    __slots__ = ()

    sampled = False
    context: Optional[TraceContext] = None

    def end(self, status: str = "ok", **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


#: The singleton no-op span: ``tracer.start(...)`` returns this object
#: for every unsampled request, so the disabled path allocates nothing.
NOOP_SPAN = _NoopSpan()


def span_record(
    name: str,
    role: str,
    ctx: TraceContext,
    start_unix: float,
    duration_s: float,
    *,
    status: str = "ok",
    attrs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build a finished span dict without a :class:`Tracer`.

    Worker processes use this to report their stages back to the
    supervisor (the dict pickles over the response pipe and is fed to
    :meth:`Tracer.ingest`).  Returns the dict; its ``span_id`` is fresh.
    """
    return {
        "trace_id": ctx.trace_id,
        "span_id": new_span_id(),
        "parent_id": ctx.parent_span_id,
        "name": name,
        "role": role,
        "pid": process_id(),
        "start_unix": start_unix,
        "duration_s": duration_s,
        "status": status,
        "attrs": dict(attrs) if attrs else _EMPTY_ATTRS,
    }


def root_record(
    name: str,
    role: str,
    ctx: TraceContext,
    start_unix: float,
    duration_s: float,
    *,
    status: str = "ok",
) -> Dict[str, object]:
    """The root-span record for a context from :meth:`Tracer.sample_root`.

    Unlike :func:`span_record` (which opens a *child* under ``ctx``),
    this claims ``ctx.parent_span_id`` as the record's own ``span_id``
    with no parent — closing the root a batch-reporting client opened.
    """
    return {
        "trace_id": ctx.trace_id,
        "span_id": ctx.parent_span_id,
        "parent_id": None,
        "name": name,
        "role": role,
        "pid": process_id(),
        "start_unix": start_unix,
        "duration_s": duration_s,
        "status": status,
        "attrs": _EMPTY_ATTRS,
    }


class Tracer:
    """Issues spans, applies sampling, and retains recent finished spans.

    ``sample_rate`` in [0, 1]: 0 disables tracing entirely (near-zero
    overhead — one float compare per request), 1 samples everything,
    intermediate rates sample deterministically every ``1/rate``-th
    root.

    The finished-span ring is a :class:`repro.obs.ring.ShardedRing`:
    finishing a span takes one *uncontended* per-thread shard lock, so
    full sampling stays affordable with many client threads finishing
    spans concurrently (a single shared ring lock measurably convoys
    the request path — see ``docs/observability.md``).  The flight
    recorder does **not** receive a per-span push: it pulls recent
    spans from this ring at dump time (``FlightRecorder.span_source``),
    so finishing a span costs exactly one ring append.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        *,
        max_spans: int = 2048,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}"
            )
        self.sample_rate = float(sample_rate)
        self._spans = ShardedRing(int(max_spans), lock_name="Tracer._shard_lock")
        # Root-arrival counter for accumulator sampling; next() is one
        # C call (GIL-atomic), so sampling decisions never take a lock.
        self._roots = itertools.count()

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def _sample(self) -> bool:
        """Deterministic accumulator sampling for a new root span: root
        ``n`` is sampled when the cumulative expected count ``(n+1)*rate``
        crosses an integer — exactly every ``1/rate``-th root."""
        rate = self.sample_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        n = next(self._roots)
        return int((n + 1) * rate) > int(n * rate)

    def sample_root(self) -> Optional[TraceContext]:
        """Sampling decision + fresh root context, without a live span.

        The high-throughput client pattern (see ``run_load``): call this
        per request, propagate the returned context, time the request
        yourself, and report the root spans in batches via
        :func:`root_record` + :meth:`ingest` — one ring acquisition per
        batch instead of per request.  Returns ``None`` when the request
        is unsampled.  The context's ``parent_span_id`` is the *root
        span's own id* (children parent to it; the eventual root record
        claims it via :func:`root_record`).
        """
        if not self._sample():
            return None
        return TraceContext(new_trace_id(), new_span_id(), True)

    def start(
        self,
        name: str,
        *,
        role: str = "client",
        ctx: Optional[TraceContext] = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        """Open a span.  Root spans (``ctx=None``) decide sampling; child
        spans inherit the parent's decision from ``ctx.sampled``."""
        if ctx is not None:
            if not ctx.sampled:
                return NOOP_SPAN
            return Span(self, ctx.trace_id, ctx.parent_span_id, name, role,
                        attrs)
        if not self._sample():
            return NOOP_SPAN
        return Span(self, new_trace_id(), None, name, role, attrs)

    def _finish(self, record: Dict[str, object]) -> None:
        self._spans.push(record, "span")

    def ingest(self, records: Optional[Sequence[Dict[str, object]]]) -> None:
        """Adopt finished span dicts produced elsewhere (worker pipes,
        batch-reporting clients).

        Malformed entries (non-dicts, missing ``trace_id``) are skipped.
        The whole batch lands under one ring-lock acquisition — callers
        on the serving hot path finish a request group's spans with a
        single ``ingest`` call.  The tracer takes ownership of the dicts
        as passed (no defensive copy — a copy per span would double the
        hot path's allocation churn); callers must hand over records
        they will not mutate afterwards.
        """
        if not records:
            return
        cleaned = [
            record
            for record in records
            if isinstance(record, dict) and "trace_id" in record
        ]
        if not cleaned:
            return
        self._spans.push_many(cleaned, "span")

    def finished(self) -> List[Dict[str, object]]:
        """Snapshot of retained finished spans (oldest first)."""
        return self._spans.snapshot()

    def spans_for(self, trace_id: str) -> List[Dict[str, object]]:
        return [
            s for s in self._spans.snapshot() if s["trace_id"] == trace_id
        ]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids among retained spans, oldest first."""
        seen: Set[str] = set()
        out: List[str] = []
        for span in self.finished():
            tid = str(span["trace_id"])
            if tid not in seen:
                seen.add(tid)
                out.append(tid)
        return out


def span_tree(spans: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Arrange finished span dicts into a parent/child forest.

    Returns a list of root nodes ``{"span": <dict>, "children": [...]}``,
    roots ordered by ``start_unix``.  Spans whose parent is missing from
    the input (e.g. it died with a killed worker) surface as roots, so a
    partial trace still renders.
    """
    nodes = {
        s["span_id"]: {"span": s, "children": []}  # type: ignore[var-annotated]
        for s in spans
    }
    roots = []
    for node in nodes.values():
        parent = nodes.get(node["span"]["parent_id"])
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["span"]["start_unix"])
    roots.sort(key=lambda n: n["span"]["start_unix"])
    return roots


def complete_retried_traces(
    spans: Sequence[Dict[str, object]],
) -> List[str]:
    """Trace ids holding a *complete retried request*: a ``retry`` span
    plus spans from the client, supervisor, and worker roles including a
    finished ``score`` stage.  This is the acceptance predicate for the
    chaos kill drill (the first attempt's worker-side spans die with the
    worker; the surviving retry must still complete the tree)."""
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        by_trace.setdefault(str(span["trace_id"]), []).append(span)
    out = []
    for tid, group in by_trace.items():
        names = {s["name"] for s in group}
        roles = {s["role"] for s in group}
        if (
            "retry" in names
            and "score" in names
            and {"client", "supervisor", "worker"} <= roles
        ):
            out.append(tid)
    return out
