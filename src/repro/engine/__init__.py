"""Unified training engine: one iteration loop for every HDC learner.

DistHD and its HDC baselines all train the same way — encode once, then
iterate "update the class memory, measure, maybe regenerate dimensions,
stop on convergence".  This package owns that loop so the models only
describe *what one iteration does*:

- :mod:`repro.engine.training` — :class:`TrainingEngine`, the epoch/batch
  schedule, plus the per-iteration context handed to model step functions;
- :mod:`repro.engine.callbacks` — the callback protocol (history recording,
  convergence tracking, timing, checkpointing) and :class:`EngineState`;
- :mod:`repro.engine.executor` — the :class:`Executor` abstraction (serial
  and process-pool) and ``n_jobs`` resolution shared by sharded fitting,
  grid search and cross-validation;
- :mod:`repro.engine.shard` — data-parallel :func:`shard_fit`: per-shard
  class memories trained in parallel workers, merged by bundling, then
  refined by a short full-data engine run.
"""

from repro.engine.callbacks import (
    Callback,
    CheckpointCallback,
    ConvergenceCallback,
    EngineState,
    HistoryCallback,
    TimingCallback,
)
from repro.engine.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    resolve_n_jobs,
)
from repro.engine.shard import shard_fit, shard_indices
from repro.engine.training import IterationContext, TrainingEngine

__all__ = [
    "Callback",
    "CheckpointCallback",
    "ConvergenceCallback",
    "EngineState",
    "Executor",
    "HistoryCallback",
    "IterationContext",
    "ProcessExecutor",
    "SerialExecutor",
    "TimingCallback",
    "TrainingEngine",
    "get_executor",
    "resolve_n_jobs",
    "shard_fit",
    "shard_indices",
]
