"""Data-parallel sharded fitting: train per-shard class memories, merge by
bundling, refine on the full data.

HDC class hypervectors are additively mergeable: a class vector is a sum of
(lr-weighted) encoded samples, so two memories trained on disjoint shards
*with the same encoder* combine by element-wise addition — the same
bundling operation single-pass training uses.  :func:`shard_fit` exploits
this:

1. deal the training set into ``n_jobs`` stratified shards (deterministic
   for a fixed seed);
2. train one class memory per shard in parallel workers — every worker
   builds the *identical* encoder from the model's seed, and dimension
   regeneration is disabled so the encoders cannot diverge;
3. merge the per-shard banks by summation (bundling);
4. run a short full-data refinement with the model's normal training loop
   (adaptive updates *and* regeneration) starting from the merged memory.

The refinement pass is what preserves accuracy: the merged memory is an
excellent initialisation (it has seen every sample once), so a few full
passes recover — and with regeneration often exceed — the single-process
model at a fraction of the full iteration budget.

``shard_fit(model, X, y, n_jobs=1)`` simply delegates to ``model.fit`` —
the serial path *is* plain fitting, bit for bit.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.datasets.splits import stratified_assignments
from repro.engine.executor import Executor, get_executor, resolve_n_jobs
from repro.utils.rng import SeedLike, as_rng, spawn_seed


def shard_indices(
    y: np.ndarray, n_shards: int, seed: SeedLike = None
) -> List[np.ndarray]:
    """Deal sample indices into ``n_shards`` stratified shards.

    Each class's samples are shuffled once and dealt round-robin, so every
    shard holds roughly ``1/n_shards`` of each class (the same deal
    :func:`repro.pipeline.crossval.stratified_kfold_indices` uses for
    folds).  Deterministic for a fixed ``seed``.  Returned index arrays
    are sorted, pairwise disjoint, and cover ``range(len(y))``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    y = np.asarray(y).ravel()
    n_shards = min(int(n_shards), y.shape[0])
    shard_of = stratified_assignments(y, n_shards, seed=seed)
    shards = [np.flatnonzero(shard_of == shard) for shard in range(n_shards)]
    # Tiny inputs can leave a shard empty (fewer samples than shards in
    # every class); fold empties away rather than fitting on nothing.
    return [s for s in shards if s.size]


def merge_banks(banks: List[np.ndarray]) -> np.ndarray:
    """Bundle per-shard class banks into one memory by summation."""
    if not banks:
        raise ValueError("no shard banks to merge")
    merged = np.array(banks[0], dtype=np.float64, copy=True)
    for bank in banks[1:]:
        if bank.shape != merged.shape:
            raise ValueError(
                f"shard banks disagree on shape: {bank.shape} vs {merged.shape}"
            )
        merged += bank
    return merged


def _train_shard(task: Any) -> np.ndarray:
    """Worker body: train one shard's class memory on a model copy.

    Module-level so it pickles into process pools.  The template is
    deep-copied even in-process, so a :class:`SerialExecutor` run leaves
    the caller's model untouched and matches the process-pool semantics
    exactly.
    """
    import copy

    template, X, y, shard_iterations = task
    model = copy.deepcopy(template)
    return model._fit_shard(X, y, shard_iterations)


def shard_fit(
    model: Any,
    X: Any,
    y: Any,
    *,
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
    shard_iterations: Optional[int] = None,
    refine_iterations: Optional[int] = None,
) -> Any:
    """Fit ``model`` on ``(X, y)`` with data-parallel sharded training.

    Parameters
    ----------
    model:
        An unfitted classifier with ``supports_sharding = True`` (the HDC
        family: DistHD, OnlineHD, NeuralHD, BaselineHD).
    X, y:
        Training data, validated exactly as ``model.fit`` validates it.
    n_jobs:
        Shard/worker count; ``None`` falls back to the model's own
        ``n_jobs`` knob, and a resolved count of 1 delegates straight to
        ``model.fit`` (bit-identical to a plain fit).
    executor:
        Optional pre-built :class:`~repro.engine.executor.Executor` to run
        shard tasks on (e.g. a :class:`SerialExecutor` to get sharded
        *semantics* without processes, or a warm pool shared across fits).
        Its worker count does not change the shard count — ``n_jobs``
        (or the model's knob) decides how the data is split.
    shard_iterations:
        Training iterations inside each shard worker (default:
        ``ceil(iterations / 2)`` — shard training only initialises the
        merged memory, so spending the full budget per shard over-trains
        state the refinement pass reworks anyway).
    refine_iterations:
        Full-data refinement iterations after the merge (default: the
        model's ``iterations`` capped at ``max(2, ceil(iterations / 4))``).

    Returns the fitted ``model``.

    Notes
    -----
    A model constructed with ``seed=None`` gets one concrete seed drawn
    from OS entropy and pinned on it (config/attribute) for the duration
    of the fit: workers and the refinement pass must share a single
    seed-derived encoder for the per-shard banks to be mergeable.  The
    seed actually used is recorded on ``model.shard_seed_`` (so any
    default-seed sharded run can be replayed exactly) and the model's own
    ``seed`` is restored to ``None`` afterwards — refitting keeps drawing
    fresh entropy, matching plain ``fit`` semantics.
    """
    if not getattr(model, "supports_sharding", False):
        raise NotImplementedError(
            f"{type(model).__name__} does not support sharded fitting "
            "(supports_sharding is False)"
        )
    n_shards = resolve_n_jobs(
        n_jobs if n_jobs is not None else model._configured_n_jobs()
    )
    X, dense = model._begin_fit(X, y)
    if n_shards < 2:
        # The serial path IS a plain fit — run it directly rather than
        # through model.fit, whose auto-routing would re-consult the
        # model's own n_jobs knob and override an explicit n_jobs=1.
        model._fit(X, dense)
        return model
    pinned: Optional[int] = None
    if model._shard_seed() is None:
        # Sharding only works against ONE seed-derived encoder shared by
        # every worker and the refinement pass; with seed=None each
        # deep-copied worker would draw fresh OS entropy and build a
        # different encoder, making the banks non-mergeable.  Draw one
        # concrete seed and pin it on the template before anything forks;
        # the finally below restores None so later refits of the same
        # model keep their fresh-entropy semantics (shard_seed_ records
        # what this run used).
        pinned = spawn_seed(as_rng(None))
        model._set_shard_seed(pinned)
    try:
        shards = shard_indices(dense, n_shards, seed=model._shard_seed())
        if len(shards) < 2:
            # Degenerate data (fewer samples than shards): plain single
            # fit — shard_seed_ stays None, as after any unsharded fit.
            model._fit(X, dense)
            return model
        model.shard_seed_ = model._shard_seed()
        if shard_iterations is None:
            shard_iterations = max(1, -(-model._iteration_budget() // 2))
        tasks = [
            (model, X[idx], dense[idx], shard_iterations) for idx in shards
        ]
        own_executor = executor is None
        # Empty-shard folding (or an n_shards > len(y) cap) can leave fewer
        # tasks than requested workers; never spawn processes with no work.
        pool = get_executor(min(n_shards, len(shards)), executor=executor)
        try:
            banks = pool.map(_train_shard, tasks)
        finally:
            if own_executor:
                pool.close()
        merged = merge_banks(banks)
        model._refine_from(X, dense, merged, refine_iterations)
        model.n_shards_ = len(shards)
        return model
    finally:
        if pinned is not None:
            model._set_shard_seed(None)
