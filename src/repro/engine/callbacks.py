"""Callback protocol for the training engine.

The engine drives the iteration schedule; everything cross-cutting a fit
used to hand-roll — history recording, convergence tracking, wall-clock
timing, periodic checkpoints — is a :class:`Callback` observing the loop.

Callbacks see an :class:`EngineState`, the single mutable record of a run.
Setting ``state.stop = True`` ends training after the current iteration
(that is how :class:`ConvergenceCallback` implements early stopping).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.convergence import ConvergenceTracker
from repro.core.history import IterationRecord, TrainingHistory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.registry import MetricsRegistry


@dataclass
class EngineState:
    """Mutable run record shared by the engine and its callbacks.

    Attributes
    ----------
    max_iterations:
        The iteration budget of this run.
    iteration:
        Zero-based index of the iteration currently executing.
    n_iterations:
        Iterations fully completed so far (``iteration + 1`` after a step).
    converged:
        Set by :class:`ConvergenceCallback` once the monitored metric
        plateaus.  Step functions read it (via the iteration context) to
        gate work that is pointless on a converged model (regeneration).
    stop:
        Any callback may set this; the engine ends the run after the
        current iteration's callbacks finish.
    failed:
        Set by the engine when the run is ending because a step or
        callback raised.  ``on_fit_end`` still fires so teardown can
        release resources, but snapshot-style callbacks must not treat
        the (possibly half-mutated) model state as a completed iteration.
    history:
        The run's :class:`~repro.core.history.TrainingHistory` when a
        :class:`HistoryCallback` is attached, else ``None``.
    iteration_seconds:
        Per-iteration wall-clock seconds when a :class:`TimingCallback`
        is attached.
    """

    max_iterations: int = 0
    iteration: int = 0
    n_iterations: int = 0
    converged: bool = False
    stop: bool = False
    failed: bool = False
    history: Optional[TrainingHistory] = None
    iteration_seconds: List[float] = field(default_factory=list)


class Callback:
    """Base class: all hooks are no-ops, subclasses override what they need."""

    def on_fit_begin(self, state: EngineState) -> None:
        """Called once before the first iteration."""

    def on_iteration_begin(self, state: EngineState) -> None:
        """Called before each iteration's step function runs."""

    def on_iteration_end(self, state: EngineState, record: IterationRecord) -> None:
        """Called after each iteration with the step's metric record."""

    def on_fit_end(self, state: EngineState) -> None:
        """Called once after the loop ends (exhausted or stopped)."""


class HistoryCallback(Callback):
    """Record every :class:`IterationRecord` into a ``TrainingHistory``.

    Pass an existing history to append to it (the models pass the fresh
    ``history_`` they expose as a fitted attribute); otherwise one is
    created at fit begin and published on ``state.history``.
    """

    def __init__(self, history: Optional[TrainingHistory] = None) -> None:
        self.history = history

    def on_fit_begin(self, state: EngineState) -> None:
        if self.history is None:
            self.history = TrainingHistory()
        state.history = self.history

    def on_iteration_end(self, state: EngineState, record: IterationRecord) -> None:
        self.history.append(record)


class ConvergenceCallback(Callback):
    """Patience-based early stopping on per-iteration training accuracy.

    Wraps a :class:`~repro.core.convergence.ConvergenceTracker`; once the
    tracked accuracy plateaus, sets both ``state.converged`` and
    ``state.stop``.  ``patience=None`` disables early stopping (the
    tracker never converges), matching the models' historical contract.
    """

    def __init__(self, patience: Optional[int] = 5, tol: float = 1e-3) -> None:
        self.tracker = ConvergenceTracker(patience, tol)

    def on_fit_begin(self, state: EngineState) -> None:
        self.tracker.reset()

    def on_iteration_end(self, state: EngineState, record: IterationRecord) -> None:
        if self.tracker.update(record.train_accuracy):
            state.converged = True
            state.stop = True


class TimingCallback(Callback):
    """Record per-iteration wall-clock seconds on ``state.iteration_seconds``."""

    def __init__(self) -> None:
        self._started: Optional[float] = None

    def on_iteration_begin(self, state: EngineState) -> None:
        self._started = time.perf_counter()

    def on_iteration_end(self, state: EngineState, record: IterationRecord) -> None:
        if self._started is not None:
            state.iteration_seconds.append(time.perf_counter() - self._started)
            self._started = None


class MetricsCallback(Callback):
    """Publish training progress into an observability metrics registry.

    Bridges the engine loop to :class:`repro.obs.MetricsRegistry`: per
    completed iteration a counter bump, the iteration wall-clock into a
    histogram, and the training accuracy onto a gauge, plus a fit
    counter and an in-progress gauge — so a long adaptation or refit
    running next to the serving stack is visible on the same
    ``/metrics`` scrape as the request path.  Instruments are created
    once per registry (re-registration is idempotent), so many fits can
    share one registry.
    """

    def __init__(
        self, registry: "MetricsRegistry", prefix: str = "repro_train"
    ) -> None:
        self._m_iterations = registry.counter(
            f"{prefix}_iterations_total", "Completed training iterations."
        )
        self._m_fits = registry.counter(
            f"{prefix}_fits_total", "Completed training runs."
        )
        self._m_active = registry.gauge(
            f"{prefix}_active", "Training runs currently in progress."
        )
        self._m_seconds = registry.histogram(
            f"{prefix}_iteration_seconds", "Wall-clock per iteration."
        )
        self._m_accuracy = registry.gauge(
            f"{prefix}_accuracy", "Training accuracy of the last iteration."
        )
        self._started: Optional[float] = None

    def on_fit_begin(self, state: EngineState) -> None:
        self._m_active.inc()

    def on_iteration_begin(self, state: EngineState) -> None:
        self._started = time.perf_counter()

    def on_iteration_end(self, state: EngineState, record: IterationRecord) -> None:
        self._m_iterations.inc()
        if self._started is not None:
            self._m_seconds.observe(time.perf_counter() - self._started)
            self._started = None
        if record.train_accuracy is not None:
            self._m_accuracy.set(float(record.train_accuracy))

    def on_fit_end(self, state: EngineState) -> None:
        self._m_active.dec()
        if not state.failed:
            self._m_fits.inc()


class CheckpointCallback(Callback):
    """Call ``snapshot()`` every ``every`` iterations (and at fit end).

    ``snapshot`` is any zero-argument callable returning a picklable or
    copyable view of the model (the HDC models pass
    ``memory_.numpy_vectors().copy``); captured snapshots are kept on
    :attr:`checkpoints` as ``(iteration, snapshot)`` pairs.  No final
    snapshot is taken when the run ends on an exception (``state.failed``)
    — the model may hold half-applied mutations.
    """

    def __init__(self, snapshot: Callable[[], object], every: int = 1) -> None:
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.snapshot = snapshot
        self.every = int(every)
        self.checkpoints: List[tuple] = []

    def on_iteration_end(self, state: EngineState, record: IterationRecord) -> None:
        if state.n_iterations % self.every == 0:
            self.checkpoints.append((state.iteration, self.snapshot()))

    def on_fit_end(self, state: EngineState) -> None:
        if state.failed:
            # The model may hold half-applied mutations from the raising
            # iteration; snapshotting them as the "last completed"
            # iteration would hand restore paths corrupt state.
            return
        last = self.checkpoints[-1][0] if self.checkpoints else None
        if state.n_iterations and last != state.n_iterations - 1:
            self.checkpoints.append((state.n_iterations - 1, self.snapshot()))
