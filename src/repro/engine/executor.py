"""Executor abstraction: where parallel work runs.

Everything in the library that fans independent work units out — sharded
fitting, grid-search candidates, cross-validation folds — goes through an
:class:`Executor` so the call sites never touch ``multiprocessing``
directly:

- :class:`SerialExecutor` runs tasks in-process, in order (the reference
  semantics every parallel path must reproduce);
- :class:`ProcessExecutor` fans tasks across a ``ProcessPoolExecutor``
  worker pool, preserving input order in the results.

``n_jobs`` follows the sklearn/joblib convention: ``None``/``1`` mean
serial, ``-1`` means one worker per visible core, any other positive
integer is an explicit worker count.  Tasks and their arguments must be
picklable to cross a process boundary; :func:`get_executor` therefore
falls back to serial execution when asked for workers the platform cannot
deliver (``n_jobs`` resolving to 1).
"""

from __future__ import annotations

import abc
import functools
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.utils.validation import check_n_jobs

T = TypeVar("T")
R = TypeVar("R")


def _visible_cores() -> int:
    """Cores this process may schedule on (affinity-aware where possible)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Resolve an ``n_jobs`` spec to an actual worker count (>= 1).

    ``None`` → 1 (serial), ``-1`` → all visible cores, positive integers
    pass through.  Worker counts beyond the visible cores are honoured as
    requested — oversubscription is occasionally useful (I/O-bound tasks)
    and harmless for determinism.
    """
    n_jobs = check_n_jobs(n_jobs)
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return _visible_cores()
    return int(n_jobs)


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` survives pickling (process-pool transport check)."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _fn_probably_picklable(fn: Any) -> bool:
    """Cheap transport probe for the map function.

    ``functools.partial`` objects (how grid search and cross-validation
    bind their shared data arrays) are probed piecewise — the wrapped
    callable plus every bound argument — skipping non-object ndarrays:
    those always pickle, and serializing a full training set just to
    prove it would cost the extra data pass the partial exists to avoid.
    Anything this heuristic lets through that still fails to pickle is
    caught by :func:`executor_map`'s mid-run fallback.
    """
    if isinstance(fn, functools.partial):
        return _fn_probably_picklable(fn.func) and all(
            (isinstance(arg, np.ndarray) and arg.dtype != object)
            or is_picklable(arg)
            for arg in (*fn.args, *fn.keywords.values())
        )
    return is_picklable(fn)


class Executor(abc.ABC):
    """Minimal executor protocol: ordered ``map`` plus lifecycle hooks."""

    #: Worker count this executor was built for (1 for serial).
    n_jobs: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""

    def close(self) -> None:
        """Release worker resources (no-op for serial)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process, in-order execution — the reference semantics."""

    n_jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ProcessExecutor(Executor):
    """Process-pool execution over ``n_jobs`` workers.

    The pool is created lazily on first :meth:`map` and reused until
    :meth:`close` (or context-manager exit).  ``fn`` and every item must
    be picklable; chunked submission keeps per-task IPC overhead small
    when there are many more items than workers.
    """

    def __init__(self, n_jobs: int) -> None:
        n_jobs = resolve_n_jobs(n_jobs)
        if n_jobs < 2:
            raise ValueError(
                f"ProcessExecutor needs at least 2 workers, got {n_jobs}; "
                "use SerialExecutor (or get_executor) for serial runs"
            )
        self.n_jobs = n_jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        chunksize = max(1, len(items) // (self.n_jobs * 4))
        return list(self._ensure_pool().map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(n_jobs={self.n_jobs})"


def get_executor(
    n_jobs: Optional[int] = None, *, executor: Optional[Executor] = None
) -> Executor:
    """Build the executor for an ``n_jobs`` spec.

    An explicit ``executor`` wins (callers thread one through to reuse a
    warm pool); otherwise ``n_jobs`` resolving to 1 gives a
    :class:`SerialExecutor` and anything larger a :class:`ProcessExecutor`.
    """
    if executor is not None:
        return executor
    resolved = resolve_n_jobs(n_jobs)
    return SerialExecutor() if resolved < 2 else ProcessExecutor(resolved)


def executor_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[R]:
    """One-shot ordered map under an executor.

    Convenience wrapper used by grid search and cross-validation: builds
    the executor for ``n_jobs``, runs the map, and tears the pool down
    (unless the caller supplied a long-lived ``executor``).  Falls back to
    serial execution when ``fn`` or the items cannot cross a process
    boundary (unpicklable closures), so parallel knobs never change which
    inputs are accepted — probed cheaply up front on the first item, and
    if a *later* item of a heterogeneous list fails to pickle mid-run the
    whole batch is rerun serially.  The rerun re-executes tasks that
    already completed in workers (they cannot have mutated driver state,
    but external side effects would repeat), so tasks must be pure or
    idempotent — everything this library dispatches is.
    """
    own = executor is None
    pool = get_executor(n_jobs, executor=executor)
    # Probe fn plus one representative item only: call sites pass
    # homogeneous task tuples, and pickling every item here would
    # serialise the (potentially large) shared arrays once per task
    # before the pool serialises them again.
    if pool.n_jobs > 1 and not (
        _fn_probably_picklable(fn) and (not items or is_picklable(items[0]))
    ):
        if own:
            pool.close()
        pool = SerialExecutor()
        own = False
    try:
        try:
            return pool.map(fn, items)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable objects surface as any of these three depending
            # on the object; only fall back when the transport genuinely
            # failed (fn or a later item of a heterogeneous list slipped
            # past the cheap probes) — errors raised by the tasks
            # themselves must propagate.  The full-fidelity re-probe is
            # fine here: this is a rare error path.
            if pool.n_jobs <= 1 or (
                is_picklable(fn) and all(is_picklable(item) for item in items)
            ):
                raise
            return SerialExecutor().map(fn, items)
    finally:
        if own:
            pool.close()
