"""The training engine: one iteration loop shared by every HDC learner.

A model hands the engine a *step function* — "run one training iteration,
return its metrics" — and the engine owns everything around it: the
iteration budget, callback dispatch (history, convergence, timing,
checkpoints), and early stopping.  The retrain-and-regenerate workflows of
DistHD, OnlineHD, NeuralHD and BaselineHD are all instances of this loop;
before this module each re-implemented it by hand.

The step function receives an :class:`IterationContext` describing where
the run stands — iteration index, whether this is the final budgeted
iteration, whether convergence has been declared — which is exactly the
information the models' regeneration gating needs (``regenerate unless
this is the last pass or the model already converged``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.history import IterationRecord
from repro.engine.callbacks import Callback, EngineState
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class IterationContext:
    """Read-only view of the run handed to the step function each iteration.

    Attributes
    ----------
    iteration:
        Zero-based index of the current iteration.
    is_last:
        True on the final *budgeted* iteration (early stopping may end the
        run sooner; the step cannot know that in advance).
    converged:
        True once a convergence callback declared a plateau.  Under the
        stock :class:`~repro.engine.callbacks.ConvergenceCallback` this
        also stops the run, so steps see ``False`` — but custom callbacks
        may declare convergence without stopping, and regeneration-style
        work should then be skipped.
    state:
        The underlying mutable :class:`EngineState` (escape hatch for
        advanced steps; prefer the frozen fields).
    """

    iteration: int
    is_last: bool
    converged: bool
    state: EngineState


#: A step function: consumes the iteration context, trains for one
#: iteration, and returns the iteration's metric record.
StepFn = Callable[[IterationContext], IterationRecord]


class TrainingEngine:
    """Drives ``iterations`` calls of a step function under callbacks.

    Parameters
    ----------
    iterations:
        Iteration budget (the models' ``iterations`` hyper-parameter).
    callbacks:
        Observers of the run; see :mod:`repro.engine.callbacks`.

    Examples
    --------
    >>> from repro.core.history import IterationRecord
    >>> from repro.engine import HistoryCallback, TrainingEngine
    >>> engine = TrainingEngine(3, callbacks=[HistoryCallback()])
    >>> state = engine.run(
    ...     lambda ctx: IterationRecord(ctx.iteration, train_accuracy=1.0)
    ... )
    >>> state.n_iterations, len(state.history)
    (3, 3)
    """

    def __init__(
        self, iterations: int, callbacks: Sequence[Callback] = ()
    ) -> None:
        self.iterations = check_positive_int(iterations, "iterations")
        self.callbacks = tuple(callbacks)
        for cb in self.callbacks:
            if not isinstance(cb, Callback):
                raise TypeError(
                    f"callbacks must be engine Callback instances, got "
                    f"{type(cb).__name__}"
                )

    def run(self, step: StepFn, *, state: Optional[EngineState] = None) -> EngineState:
        """Execute the loop; returns the final :class:`EngineState`.

        Per iteration: ``on_iteration_begin`` hooks, the step function,
        then ``on_iteration_end`` hooks — and the run ends early as soon
        as any callback set ``state.stop``.  ``on_fit_begin`` /
        ``on_fit_end`` bracket the whole run; ``on_fit_end`` also fires
        when the step (or a callback) raises, with ``state.failed`` set
        so teardown-style callbacks can release resources without
        capturing mid-iteration model state as if it were a completed
        iteration.
        """
        if state is None:
            state = EngineState()
        state.max_iterations = self.iterations
        # A caller-supplied state (continued training) keeps accumulated
        # observations (history, timings) but not run-scoped flags: a
        # stale stop/converged from a previous early-stopped run would
        # silently truncate this one, and a stale failed would make
        # teardown callbacks treat a successful run as crashed.
        state.stop = False
        state.converged = False
        state.failed = False
        state.n_iterations = 0
        try:
            for cb in self.callbacks:
                cb.on_fit_begin(state)
            for iteration in range(self.iterations):
                state.iteration = iteration
                for cb in self.callbacks:
                    cb.on_iteration_begin(state)
                context = IterationContext(
                    iteration=iteration,
                    is_last=iteration == self.iterations - 1,
                    converged=state.converged,
                    state=state,
                )
                record = step(context)
                if not isinstance(record, IterationRecord):
                    raise TypeError(
                        "step must return an IterationRecord, got "
                        f"{type(record).__name__}"
                    )
                state.n_iterations = iteration + 1
                for cb in self.callbacks:
                    cb.on_iteration_end(state, record)
                if state.stop:
                    break
        except BaseException:
            state.failed = True
            raise
        finally:
            for cb in self.callbacks:
                cb.on_fit_end(state)
        return state
