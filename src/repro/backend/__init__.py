"""Pluggable array-compute backends (``repro.backend``).

The HDC hot paths — encoding, similarity search, adaptive updates,
regeneration — are written against the small
:class:`~repro.backend.base.ArrayBackend` protocol instead of NumPy
directly, so the compute engine is swappable per model::

    from repro import make_model

    clf = make_model("disthd", backend="numpy", dtype="float32")  # default
    clf = make_model("disthd", backend="torch")   # when torch is installed

See ``docs/performance.md`` for backend selection and dtype trade-offs.
"""

from repro.backend.base import ArrayBackend, auto_chunk_rows, resolve_dtype
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    BackendLike,
    default_backend,
    get_backend,
    list_backends,
    register_backend,
    supports_packed,
)
from repro.backend.torch_backend import TorchBackend, torch_is_available

__all__ = [
    "ArrayBackend",
    "BackendLike",
    "auto_chunk_rows",
    "NumpyBackend",
    "TorchBackend",
    "default_backend",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_dtype",
    "supports_packed",
    "torch_is_available",
]
