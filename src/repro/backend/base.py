"""The ``ArrayBackend`` protocol — the library's pluggable compute seam.

The paper frames DistHD training and inference as "highly parallel
matrix-wise" operations; everything the hot paths need from an array library
is collected here as a small abstract interface: matmul, cosine similarity,
norms, RNG draws, rolls, top-k/argpartition, dtype casts, scatter-adds and
conversion back to NumPy.  Implementations exist for NumPy (the default,
:mod:`repro.backend.numpy_backend`) and PyTorch
(:mod:`repro.backend.torch_backend`, auto-registered when torch imports).

Two conventions keep backends interchangeable:

- **RNG draws go through NumPy.**  Every stochastic draw takes a
  :class:`numpy.random.Generator` and materialises the values with NumPy
  before converting to the backend's native array type, so a model built at
  the same seed holds bit-identical parameters under every backend.
- **Scores leave as NumPy.**  Heavy ``(n, D)``-shaped math stays native to
  the backend; small ``(n, k)`` similarity/score matrices are converted to
  float64 NumPy at the query boundary so control flow (argmax, partitions,
  metrics) is backend-agnostic.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Tuple

import numpy as np

#: dtype aliases accepted anywhere a ``dtype`` is configured.
_DTYPE_ALIASES = {
    "float32": np.float32,
    "float64": np.float64,
    "f32": np.float32,
    "f64": np.float64,
    "single": np.float32,
    "double": np.float64,
}


def resolve_dtype(dtype: Any) -> np.dtype:
    """Normalise a dtype spec (``"float32"``, ``np.float64``, ...) to a
    NumPy dtype.  ``None`` resolves to float64 (the legacy default)."""
    if dtype is None:
        return np.dtype(np.float64)
    if isinstance(dtype, str):
        key = dtype.strip().lower()
        if key in _DTYPE_ALIASES:
            return np.dtype(_DTYPE_ALIASES[key])
        raise ValueError(
            f"unknown dtype {dtype!r}; expected one of "
            f"{sorted(set(_DTYPE_ALIASES))}"
        )
    return np.dtype(dtype)


#: Element budget per streamed chunk (rows × dim) for the fused kernels —
#: sized so a float32 chunk buffer is ~1 MiB and the ~3 live buffers of the
#: fused Algorithm-2 kernel stay L2/L3-resident on commodity CPUs.
_CHUNK_ELEMENTS = 1 << 18


def auto_chunk_rows(dim: int, elements: int = _CHUNK_ELEMENTS) -> int:
    """Rows per chunk targeting ``elements`` array entries for width ``dim``."""
    return max(16, elements // max(int(dim), 1))


class ArrayBackend(abc.ABC):
    """Abstract array-compute backend.

    Subclasses provide the primitive array operations the HDC hot paths are
    written against.  Arrays handled by a backend are *native* arrays
    (``np.ndarray`` for NumPy, ``torch.Tensor`` for torch); use
    :meth:`asarray` / :meth:`to_numpy` to cross the boundary.
    """

    #: Registry name (``"numpy"``, ``"torch"``); set by subclasses.
    name: str = "abstract"

    #: Whether the backend provides the packed binary kernels
    #: (:meth:`packbits_rows` / :meth:`hamming_scores_packed`).  The base
    #: class ships a generic implementation through NumPy, so every
    #: backend supports packing; a subclass replacing the generic path
    #: with something partial may set this ``False`` and callers (see
    #: :func:`repro.backend.registry.supports_packed`) will fall back to
    #: unpacked scoring.
    supports_packed: bool = True

    # ------------------------------------------------------------ conversion

    @abc.abstractmethod
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        """Convert ``x`` to a native array, optionally casting to ``dtype``."""

    @abc.abstractmethod
    def to_numpy(self, x: Any) -> np.ndarray:
        """Convert a native array to ``np.ndarray`` (zero-copy when possible)."""

    @abc.abstractmethod
    def is_native(self, x: Any) -> bool:
        """Whether ``x`` is already this backend's native array type."""

    def cast(self, x: Any, dtype: Any) -> Any:
        """Cast a native array to ``dtype`` (no-op when already there)."""
        return self.asarray(x, dtype=dtype)

    # ---------------------------------------------------------- construction

    @abc.abstractmethod
    def zeros(self, shape: Any, dtype: Any = np.float64) -> Any:
        """A zero-filled native array."""

    def empty(self, shape: Any, dtype: Any = np.float64) -> Any:
        """An *uninitialised* native array — for outputs every element of
        which the caller overwrites (chunked encode windows, block-stacked
        encoder outputs), where :meth:`zeros`'s fill is pure waste.

        The base implementation falls back to :meth:`zeros` so subclasses
        only override when the engine has a real uninitialised constructor.
        """
        return self.zeros(shape, dtype=dtype)

    @abc.abstractmethod
    def copy(self, x: Any) -> Any:
        """A defensive copy of a native array."""

    # ------------------------------------------------------------------- rng

    def draw_normal(
        self,
        rng: np.random.Generator,
        mean: float,
        std: float,
        shape: Any,
        dtype: Any,
    ) -> Any:
        """Gaussian draw, materialised via NumPy for cross-backend parity."""
        return self.asarray(rng.normal(mean, std, size=shape), dtype=dtype)

    def draw_uniform(
        self,
        rng: np.random.Generator,
        low: float,
        high: float,
        shape: Any,
        dtype: Any,
    ) -> Any:
        """Uniform draw, materialised via NumPy for cross-backend parity."""
        return self.asarray(rng.uniform(low, high, size=shape), dtype=dtype)

    # ------------------------------------------------------------ arithmetic

    @abc.abstractmethod
    def matmul(self, a: Any, b: Any) -> Any:
        """Matrix product ``a @ b``."""

    @abc.abstractmethod
    def norm(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        """L2 norm along ``axis``."""

    @abc.abstractmethod
    def cos(self, x: Any) -> Any:
        """Element-wise cosine."""

    @abc.abstractmethod
    def sin(self, x: Any) -> Any:
        """Element-wise sine."""

    @abc.abstractmethod
    def tanh(self, x: Any) -> Any:
        """Element-wise hyperbolic tangent."""

    @abc.abstractmethod
    def where(self, cond: Any, a: Any, b: Any) -> Any:
        """Element-wise select."""

    @abc.abstractmethod
    def sum(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        """Sum along ``axis`` (integer inputs may promote to avoid overflow)."""

    @abc.abstractmethod
    def abs(self, x: Any) -> Any:
        """Element-wise absolute value."""

    def amin(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        """Minimum along ``axis``.  Default round-trips through NumPy;
        backends override with the engine's native reduction."""
        return np.min(self.to_numpy(x), axis=axis, keepdims=keepdims)

    def amax(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        """Maximum along ``axis``.  Default round-trips through NumPy;
        backends override with the engine's native reduction."""
        return np.max(self.to_numpy(x), axis=axis, keepdims=keepdims)

    @abc.abstractmethod
    def roll(self, x: Any, shift: int, axis: int = -1) -> Any:
        """Cyclic shift along ``axis`` (the HDC permute primitive)."""

    @abc.abstractmethod
    def einsum(self, subscripts: str, *operands: Any) -> Any:
        """Einstein summation over native arrays."""

    def cosine_similarity(
        self,
        queries: Any,
        memory: Any,
        eps: float = 1e-12,
        memory_norms: Any = None,
    ) -> Any:
        """``(n, k)`` cosine similarity with the zero-vector → 0 convention.

        ``memory_norms`` optionally supplies precomputed ``(k, 1)`` row norms
        of ``memory`` (native array), letting callers with a stable class
        bank — :class:`~repro.hdc.memory.AssociativeMemory` caches them per
        mutation version — skip the per-call ``O(kD)`` norm recompute.

        Default implementation composes :meth:`matmul` and :meth:`norm`;
        backends may override with a fused kernel.
        """
        scores = self.matmul(queries, self.transpose(memory))
        q_norm = self.norm(queries, axis=1, keepdims=True)  # (n, 1)
        m_norm = (
            memory_norms
            if memory_norms is not None
            else self.norm(memory, axis=1, keepdims=True)  # (k, 1)
        )
        denom = self.matmul(q_norm, self.transpose(m_norm))  # (n, k)
        safe = self.where(denom > eps, denom, self.ones_like(denom))
        return self.where(denom > eps, scores / safe, self.zeros_like(scores))

    @abc.abstractmethod
    def transpose(self, x: Any) -> Any:
        """Matrix transpose (2-D)."""

    @abc.abstractmethod
    def ones_like(self, x: Any) -> Any:
        """Array of ones with ``x``'s shape and dtype."""

    @abc.abstractmethod
    def zeros_like(self, x: Any) -> Any:
        """Array of zeros with ``x``'s shape and dtype."""

    # -------------------------------------------------------------- indexing

    @abc.abstractmethod
    def take_rows(self, x: Any, idx: Any) -> Any:
        """``x[idx]`` for an integer index array (gather along axis 0)."""

    def slice_rows(self, x: Any, start: int, stop: int) -> Any:
        """``x[start:stop]`` — a contiguous row window, as a view when the
        engine supports views (both NumPy and torch do).  The chunked hot
        paths prefer this over :meth:`take_rows` with an ``arange``, which
        would copy."""
        return x[start:stop]

    @abc.abstractmethod
    def set_rows(self, x: Any, idx: Any, values: Any) -> None:
        """``x[idx] = values`` in place (rows)."""

    def take_columns(self, x: Any, cols: Any) -> Any:
        """``x[:, cols]`` for an integer index array.

        Default works for any NumPy-style indexable native array; override
        when the engine needs its own gather.
        """
        return x[:, self.asarray(cols, dtype=np.int64)]

    @abc.abstractmethod
    def set_columns(self, x: Any, cols: Any, values: Any) -> None:
        """``x[:, cols] = values`` in place."""

    @abc.abstractmethod
    def zero_columns(self, x: Any, cols: Any) -> None:
        """``x[:, cols] = 0`` in place."""

    @abc.abstractmethod
    def scatter_add_rows(self, target: Any, idx: Any, values: Any) -> None:
        """``target[idx] += values`` with duplicate-index accumulation."""

    @abc.abstractmethod
    def scatter_add_cells(
        self,
        target: Any,
        rows: Any,
        cols: Any,
        values: Any,
    ) -> None:
        """``target[rows[:, None], cols[None, :]] += values`` accumulating."""

    def argpartition_desc(self, x: Any, k: int, axis: int = -1) -> Any:
        """Partition indices putting the ``k`` largest entries first
        (unordered within the partition).  Default runs on NumPy via
        :meth:`to_numpy`; override with the engine's partial sort.
        """
        s = self.to_numpy(x)
        if k >= np.shape(s)[axis]:
            return np.argsort(-s, axis=axis, kind="stable")
        return np.argpartition(-s, k - 1, axis=axis)

    def topk_desc(self, scores: Any, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` indices and values per row, best first, as NumPy arrays.

        ``scores`` is ``(n, m)``; returns ``(indices, values)`` of shape
        ``(n, k)``.  Default implementation argpartitions then sorts only
        the ``k`` survivors, which beats a full argsort for small ``k``.
        """
        s = self.to_numpy(scores)
        part = np.asarray(self.argpartition_desc(s, k, axis=1))[:, :k]
        top = np.take_along_axis(s, part, axis=1)
        order = np.take_along_axis(
            part, np.argsort(-top, axis=1, kind="stable"), axis=1
        )
        return order, np.take_along_axis(s, order, axis=1)

    # ---------------------------------------------------------- fused kernels

    def fused_absdiff_colsum(
        self,
        H: Any,
        rows: Any,
        C: Any,
        class_terms: Any,
        coeffs: Any,
        *,
        normalization: str = "l2",
        chunk_size: Optional[int] = None,
        eps: float = 1e-12,
    ) -> np.ndarray:
        """Column sums of row-normalised signed ``|H − C|`` combinations.

        The Algorithm-2 scoring kernel.  For each selected sample ``i``
        (``rows[i]``) the *virtual* distance row is

            ``R_i = Σ_j coeffs[j] · |H[rows[i]] − C[class_terms[j][i]]|``

        Rows are normalised per ``normalization`` (``"l2"`` / ``"l1"`` /
        ``"minmax"`` / ``"none"``, matching the dense reference in
        :mod:`repro.core.regeneration`) and column-summed into a single
        ``(D,)`` float64 NumPy vector.  The kernel streams in row chunks of
        ``chunk_size`` (``None`` → a cache-sized default), so peak extra
        memory is ``O(chunk · D)`` — the full ``(m, D)`` distance matrix is
        never materialised, and all arithmetic stays native to the backend
        (one host conversion for the final ``(D,)`` result).

        Parameters
        ----------
        H:
            ``(n, D)`` native encoded batch.
        rows:
            ``(m,)`` integer sample indices into ``H`` to score.
        C:
            ``(k, D)`` native (normalised) class bank, same dtype as ``H``.
        class_terms:
            Sequence of ``(m,)`` integer arrays — per-term class index for
            each selected sample.
        coeffs:
            Per-term signed weights (``α``, ``−β``, ``−θ``, ...).
        """
        if len(class_terms) != len(coeffs) or not class_terms:
            raise ValueError(
                f"class_terms and coeffs must be equal-length and non-empty, "
                f"got {len(class_terms)} terms and {len(coeffs)} coeffs"
            )
        rows = np.asarray(rows, dtype=np.int64)
        dim = int(H.shape[1])
        if rows.size == 0:
            return np.zeros(dim, dtype=np.float64)
        terms = [np.asarray(t, dtype=np.int64) for t in class_terms]
        for t in terms:
            if t.shape[0] != rows.shape[0]:
                raise ValueError(
                    f"class term has {t.shape[0]} entries for {rows.shape[0]} rows"
                )
        chunk = chunk_size if chunk_size is not None else auto_chunk_rows(dim)
        chunk = max(1, min(int(chunk), rows.size))
        total = self.zeros((dim,), dtype=np.float64)
        for start in range(0, rows.size, chunk):
            stop = min(start + chunk, rows.size)
            h = self.take_rows(H, rows[start:stop])
            combined = None
            for t, w in zip(terms, coeffs):
                term = self.abs(h - self.take_rows(C, t[start:stop]))
                part = term * float(w)
                combined = part if combined is None else combined + part
            combined = self._normalize_rows_for_colsum(
                combined, normalization, eps
            )
            total = total + self.sum(
                self.cast(combined, np.float64), axis=0
            )
        return self.to_numpy(total).astype(np.float64, copy=False)

    def _normalize_rows_for_colsum(
        self,
        x: Any,
        normalization: str,
        eps: float,
    ) -> Any:
        """Row-normalise a native chunk per Algorithm 2's rule."""
        if normalization == "none":
            return x
        if normalization == "l2":
            norms = self.norm(x, axis=1, keepdims=True)
        elif normalization == "l1":
            norms = self.sum(self.abs(x), axis=1, keepdims=True)
        elif normalization == "minmax":
            lo = self.amin(x, axis=1, keepdims=True)
            hi = self.amax(x, axis=1, keepdims=True)
            span = hi - lo
            safe = self.where(span > eps, span, self.ones_like(span))
            return (x - lo) / safe
        else:
            raise ValueError(f"unknown normalization {normalization!r}")
        safe = self.where(norms > eps, norms, self.ones_like(norms))
        return x / safe

    def fwht_rows(self, x: Any) -> Any:
        """Walsh–Hadamard-transform every row of a native 2-D array.

        Computes ``x @ H`` for the *unnormalised* Sylvester–Hadamard matrix
        ``H`` of order ``x.shape[1]`` (which must be a power of two) in
        ``O(m log m)`` per row — the kernel behind the structured
        (SORF/Fastfood) encoders of
        :mod:`repro.hdc.encoders.structured`.  Callers fold any ``1/√m``
        normalisation into their own scaling, keeping the transform
        integer-exact (see :mod:`repro.hdc.fwht`).

        **In-place contract:** when ``x`` is a native, writable,
        C-contiguous array the backend MAY transform it in place and return
        it — callers must pass a buffer they own and always use the return
        value.  Encoder chains (``H D₃ H D₂ H D₁ x``) rely on this to reuse
        one work buffer across the whole chain.

        Default implementation round-trips through NumPy and the blocked
        butterfly kernel of :mod:`repro.hdc.fwht`; backends override to
        stay native.
        """
        from repro.hdc import fwht as _fwht

        arr = np.array(self.to_numpy(x), copy=True, order="C")  # repro: allow[backend-purity] copy preserves input dtype
        return self.asarray(
            _fwht.fwht_rows_inplace(arr), dtype=arr.dtype
        )

    # ------------------------------------------------------- packed binary

    def packbits_rows(self, x: Any) -> np.ndarray:
        """Sign-binarise native rows (``x >= 0`` → bit 1) and bit-pack them.

        ``x`` is ``(n, D)`` (or ``(D,)``) native; returns ``(n, W)`` NumPy
        ``uint64`` words, ``W = ceil(D / 64)``, with zero pad bits per the
        contract in :mod:`repro.hdc.packed`.  Packed words always cross
        the API boundary as NumPy — like similarity scores, they are
        boundary values, so packed artifacts stay backend-neutral.

        The sign convention matches 1-bit quantization
        (:func:`repro.noise.quantization.quantize`): ``x >= 0`` → bit 1.
        Default implementation converts to NumPy and packs there;
        backends override to avoid conversions or shrink device→host
        traffic.
        """
        from repro.hdc import packed as _packed

        return _packed.pack_sign_rows(self.to_numpy(x))

    def hamming_scores_packed(
        self,
        q_words: Any,
        m_words: Any,
        dim: int,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Similarity ``(dim − 2·hamming) / dim`` between packed rows.

        ``q_words`` ``(n, W)`` and ``m_words`` ``(k, W)`` are NumPy
        ``uint64`` packed words (the boundary representation produced by
        :meth:`packbits_rows`); returns ``(n, k)`` float64 NumPy scores in
        ``[-1, 1]`` via XOR + popcount — identical rows score 1.0 and the
        score is strictly decreasing in Hamming distance.  ``chunk_size``
        bounds the XOR temporary for large query batches.

        Default implementation runs the NumPy kernels of
        :mod:`repro.hdc.packed` (which select ``np.bitwise_count`` or the
        lookup-table fallback at import time); backends override with
        engine-native popcount.
        """
        from repro.hdc import packed as _packed

        return _packed.hamming_scores_packed(
            np.asarray(q_words, dtype=np.uint64),
            np.asarray(m_words, dtype=np.uint64),
            int(dim),
            chunk_size=chunk_size,
        )

    # ------------------------------------------------------------------ misc

    def similarity_scores(
        self,
        queries: Any,
        memory: Any,
        metric: str = "cosine",
        memory_norms: Any = None,
    ) -> Any:
        """Backend-native similarity matrix, converted to float64 NumPy.

        The float64 is the *container* dtype: values are computed at the
        operands' native dtype, so float32 operands give float32-precision
        scores in a float64 array (see ``docs/performance.md``).
        """
        if metric == "cosine":
            out = self.cosine_similarity(queries, memory,
                                         memory_norms=memory_norms)
        else:
            out = self.matmul(queries, self.transpose(memory))
        return self.to_numpy(out).astype(np.float64, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
