"""The default vectorised NumPy backend."""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.backend.base import ArrayBackend

_EPS = 1e-12


class NumpyBackend(ArrayBackend):
    """Reference :class:`~repro.backend.base.ArrayBackend` on NumPy arrays.

    All operations are plain vectorised NumPy; conversion methods are
    zero-copy whenever dtypes already match.
    """

    name = "numpy"

    # ------------------------------------------------------------ conversion

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x: Any) -> np.ndarray:
        return np.asarray(x)

    def is_native(self, x: Any) -> bool:
        return isinstance(x, np.ndarray)

    # ---------------------------------------------------------- construction

    def zeros(self, shape: Any, dtype: Any = np.float64) -> Any:
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape: Any, dtype: Any = np.float64) -> Any:
        return np.empty(shape, dtype=dtype)

    def copy(self, x: Any) -> Any:
        return np.array(x, copy=True)  # repro: allow[backend-purity] copy preserves input dtype

    # ------------------------------------------------------------ arithmetic

    def matmul(self, a: Any, b: Any) -> Any:
        return a @ b

    def norm(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        return np.linalg.norm(x, axis=axis, keepdims=keepdims)

    def cos(self, x: Any) -> Any:
        return np.cos(x)

    def sin(self, x: Any) -> Any:
        return np.sin(x)

    def tanh(self, x: Any) -> Any:
        return np.tanh(x)

    def where(self, cond: Any, a: Any, b: Any) -> Any:
        return np.where(cond, a, b)

    def sum(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        return np.sum(x, axis=axis, keepdims=keepdims)

    def abs(self, x: Any) -> Any:
        return np.abs(x)

    def amin(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        return np.min(x, axis=axis, keepdims=keepdims)

    def amax(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        return np.max(x, axis=axis, keepdims=keepdims)

    def roll(self, x: Any, shift: int, axis: int = -1) -> Any:
        return np.roll(x, shift, axis=axis)

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        return np.einsum(subscripts, *operands)

    def cosine_similarity(
        self,
        queries: Any,
        memory: Any,
        eps: float = _EPS,
        memory_norms: Any = None,
    ) -> Any:
        scores = queries @ memory.T
        q_norm = np.linalg.norm(queries, axis=1)
        m_norm = (
            np.asarray(memory_norms).reshape(-1)
            if memory_norms is not None
            else np.linalg.norm(memory, axis=1)
        )
        denom = np.outer(q_norm, m_norm)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                denom > eps, scores / np.where(denom > eps, denom, 1.0), 0.0
            )

    def transpose(self, x: Any) -> Any:
        return x.T

    def ones_like(self, x: Any) -> Any:
        return np.ones_like(x)

    def zeros_like(self, x: Any) -> Any:
        return np.zeros_like(x)

    # -------------------------------------------------------------- indexing

    def take_rows(self, x: Any, idx: Any) -> Any:
        return x[np.asarray(idx, dtype=np.int64)]

    def set_rows(self, x: Any, idx: Any, values: Any) -> None:
        x[np.asarray(idx, dtype=np.int64)] = values

    def take_columns(self, x: Any, cols: Any) -> Any:
        return x[:, np.asarray(cols, dtype=np.int64)]

    def set_columns(self, x: Any, cols: Any, values: Any) -> None:
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values)
        # A column scatter on a C-contiguous matrix strides by the full row
        # width per element, so one pass over many rows thrashes the cache.
        # Writing in row windows sized to keep the touched span L2-resident
        # (~2.5x faster at D=4096) produces identical results.
        if (
            x.ndim == 2
            and values.ndim == 2
            and values.shape == (x.shape[0], cols.size)
        ):
            from repro.backend.base import auto_chunk_rows

            chunk = auto_chunk_rows(x.shape[1], 1 << 16)
            for start in range(0, x.shape[0], chunk):
                stop = start + chunk
                x[start:stop][:, cols] = values[start:stop]
        else:
            x[:, cols] = values

    def zero_columns(self, x: Any, cols: Any) -> None:
        x[:, np.asarray(cols, dtype=np.int64)] = 0

    def scatter_add_rows(self, target: Any, idx: Any, values: Any) -> None:
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values, dtype=target.dtype)
        n_rows = target.shape[0]
        # ufunc.at is an order of magnitude slower than BLAS; when many
        # updates land on few rows (the classifier case: m samples vs k
        # classes), reduce via a one-hot matmul instead.
        if values.ndim == 2 and idx.size > max(n_rows, 4):
            onehot = np.zeros((n_rows, idx.size), dtype=target.dtype)
            onehot[idx, np.arange(idx.size, dtype=np.int64)] = 1.0
            target += onehot @ values
        else:
            np.add.at(target, idx, values)

    def scatter_add_cells(
        self,
        target: Any,
        rows: Any,
        cols: Any,
        values: Any,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=target.dtype)
        n_rows = target.shape[0]
        # Same reduction trick as scatter_add_rows: ufunc.at walks cells one
        # at a time, so when many updates land on few rows (re-bundling a
        # training batch into k classes), grouping per target row via a
        # one-hot matmul and scattering the small (k, n_cols) result is
        # ~20x faster.  The final scatter still goes through add.at so
        # duplicate column indices accumulate exactly like the slow path.
        if (
            values.ndim == 2
            and values.shape == (rows.size, cols.size)
            and rows.size > max(n_rows, 4)
        ):
            onehot = np.zeros((n_rows, rows.size), dtype=target.dtype)
            onehot[rows, np.arange(rows.size, dtype=np.int64)] = 1.0
            np.add.at(
                target,
                (np.arange(n_rows, dtype=np.int64)[:, None], cols[None, :]),
                onehot @ values,
            )
        else:
            np.add.at(target, (rows[:, None], cols[None, :]), values)

    def argpartition_desc(self, x: Any, k: int, axis: int = -1) -> Any:
        if k >= np.shape(x)[axis]:
            return np.argsort(-np.asarray(x), axis=axis, kind="stable")
        return np.argpartition(-np.asarray(x), k - 1, axis=axis)

    def fwht_rows(self, x: Any) -> Any:
        # Tuned over the generic path: transform genuinely in place when the
        # caller hands a contiguous writable float array (the encoder chains
        # do), skipping the generic implementation's defensive copy.
        from repro.hdc.fwht import fwht_rows_inplace

        arr = np.asarray(x)
        if not (
            arr.ndim == 2
            and arr.flags.c_contiguous
            and arr.flags.writeable
            and np.issubdtype(arr.dtype, np.floating)
        ):
            arr = np.array(arr, copy=True, order="C")  # repro: allow[backend-purity] transform preserves input dtype
            if not np.issubdtype(arr.dtype, np.floating):
                arr = arr.astype(np.float64)
        return fwht_rows_inplace(arr)

    # ------------------------------------------------------- packed binary

    def packbits_rows(self, x: Any) -> np.ndarray:
        # Native rows are already NumPy: skip the to_numpy round-trip and
        # let packbits consume the boolean sign mask directly (no
        # intermediate integer copy — this fused pack is what keeps the
        # packed scorer ahead of the float path on the serving hot path).
        from repro.hdc.packed import pack_sign_rows

        return pack_sign_rows(np.asarray(x))

    def hamming_scores_packed(
        self,
        q_words: Any,
        m_words: Any,
        dim: int,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        # Tuned over the generic path: the (chunk, k, W) XOR temporary is
        # allocated once and reused across chunks (ufunc out=), and the
        # chunk size defaults to the cache-sized auto_chunk_rows budget
        # instead of the whole batch.
        from repro.backend.base import auto_chunk_rows
        from repro.hdc import packed as _packed

        Q = np.ascontiguousarray(np.asarray(q_words, dtype=np.uint64))
        M = np.ascontiguousarray(np.asarray(m_words, dtype=np.uint64))
        if Q.ndim == 1:
            Q = Q.reshape(1, -1)
        if M.ndim == 1:
            M = M.reshape(1, -1)
        if Q.shape[1] != M.shape[1]:
            raise ValueError(
                f"q_words and m_words disagree on word count: "
                f"{Q.shape[1]} vs {M.shape[1]}"
            )
        if dim <= 0 or _packed.words_per_row(dim) != Q.shape[1]:
            raise ValueError(
                f"dim={dim} does not match {Q.shape[1]} packed words"
            )
        n, width = Q.shape
        k = M.shape[0]
        chunk = (
            int(chunk_size)
            if chunk_size is not None
            else auto_chunk_rows(max(k * width, 1))
        )
        chunk = max(1, min(chunk, max(n, 1)))
        out = np.empty((n, k), dtype=np.float64)
        xor_buf = np.empty((chunk, k, width), dtype=np.uint64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            buf = xor_buf[: stop - start]
            np.bitwise_xor(
                Q[start:stop, None, :], M[None, :, :], out=buf
            )
            out[start:stop] = _packed.popcount_words(buf).sum(
                axis=-1, dtype=np.int64
            )
        # (dim - 2*counts) / dim, in place on the float64 output — the
        # same expression (and rounding) as the generic kernel, so tuned
        # and generic scores are bit-identical.
        np.multiply(out, -2.0, out=out)
        np.add(out, np.float64(dim), out=out)
        np.divide(out, np.float64(dim), out=out)
        return out

    # ---------------------------------------------------------- fused kernels

    def fused_absdiff_colsum(
        self,
        H: Any,
        rows: Any,
        C: Any,
        class_terms: Any,
        coeffs: Any,
        *,
        normalization: str = "l2",
        chunk_size: Any = None,
        eps: float = _EPS,
    ) -> np.ndarray:
        # Same contract as the base implementation, but with every per-chunk
        # array preallocated once and reused (np.take/ufunc out= everywhere),
        # so the streaming loop performs zero heap allocation after the first
        # chunk and each chunk stays cache-resident while all terms consume it.
        from repro.backend.base import auto_chunk_rows

        if len(class_terms) != len(coeffs) or not class_terms:
            raise ValueError(
                f"class_terms and coeffs must be equal-length and non-empty, "
                f"got {len(class_terms)} terms and {len(coeffs)} coeffs"
            )
        H = np.asarray(H)
        if not np.issubdtype(H.dtype, np.floating):
            # Integer hypervectors need the promoting arithmetic of the
            # generic implementation; the in-place buffers here would
            # truncate the fractional coefficients and normalisation.
            return super().fused_absdiff_colsum(
                H, rows, C, class_terms, coeffs,
                normalization=normalization, chunk_size=chunk_size, eps=eps,
            )
        rows = np.asarray(rows, dtype=np.int64)
        dim = H.shape[1]
        if rows.size == 0:
            return np.zeros(dim, dtype=np.float64)
        C = np.asarray(C, dtype=H.dtype)
        terms = [np.asarray(t, dtype=np.int64) for t in class_terms]
        for t in terms:
            if t.shape[0] != rows.shape[0]:
                raise ValueError(
                    f"class term has {t.shape[0]} entries for {rows.shape[0]} rows"
                )
        chunk = chunk_size if chunk_size is not None else auto_chunk_rows(dim)
        chunk = max(1, min(int(chunk), rows.size))

        total = np.zeros(dim, dtype=np.float64)
        h_buf = np.empty((chunk, dim), dtype=H.dtype)
        c_buf = np.empty((chunk, dim), dtype=H.dtype)
        out_buf = np.empty((chunk, dim), dtype=H.dtype)
        for start in range(0, rows.size, chunk):
            stop = min(start + chunk, rows.size)
            c = stop - start
            h = h_buf[:c]
            t = c_buf[:c]
            out = out_buf[:c]
            np.take(H, rows[start:stop], axis=0, out=h)
            for j, (cls_idx, w) in enumerate(zip(terms, coeffs)):
                np.take(C, cls_idx[start:stop], axis=0, out=t)
                np.subtract(h, t, out=t)
                np.abs(t, out=t)
                if j == 0:
                    np.multiply(t, H.dtype.type(w), out=out)
                else:
                    np.multiply(t, H.dtype.type(w), out=t)
                    np.add(out, t, out=out)
            self._normalize_chunk_inplace(out, normalization, eps)
            total += out.sum(axis=0, dtype=np.float64)
        return total

    @staticmethod
    def _normalize_chunk_inplace(out: np.ndarray, normalization: str,
                                 eps: float) -> None:
        """Row-normalise one streamed chunk in place (Algorithm 2's rule)."""
        if normalization == "none":
            return
        if normalization == "l2":
            norms = np.linalg.norm(out, axis=1, keepdims=True)
        elif normalization == "l1":
            norms = np.sum(np.abs(out), axis=1, keepdims=True)
        elif normalization == "minmax":
            lo = out.min(axis=1, keepdims=True)
            hi = out.max(axis=1, keepdims=True)
            span = hi - lo
            np.subtract(out, lo, out=out)
            np.divide(out, np.where(span > eps, span, 1.0), out=out)
            return
        else:
            raise ValueError(f"unknown normalization {normalization!r}")
        np.divide(out, np.where(norms > eps, norms, 1.0), out=out)
