"""The default vectorised NumPy backend."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend.base import ArrayBackend

_EPS = 1e-12


class NumpyBackend(ArrayBackend):
    """Reference :class:`~repro.backend.base.ArrayBackend` on NumPy arrays.

    All operations are plain vectorised NumPy; conversion methods are
    zero-copy whenever dtypes already match.
    """

    name = "numpy"

    # ------------------------------------------------------------ conversion

    def asarray(self, x, dtype=None):
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def is_native(self, x) -> bool:
        return isinstance(x, np.ndarray)

    # ---------------------------------------------------------- construction

    def zeros(self, shape, dtype=np.float64):
        return np.zeros(shape, dtype=dtype)

    def copy(self, x):
        return np.array(x, copy=True)

    # ------------------------------------------------------------ arithmetic

    def matmul(self, a, b):
        return a @ b

    def norm(self, x, axis: Optional[int] = None, keepdims: bool = False):
        return np.linalg.norm(x, axis=axis, keepdims=keepdims)

    def cos(self, x):
        return np.cos(x)

    def sin(self, x):
        return np.sin(x)

    def tanh(self, x):
        return np.tanh(x)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def sum(self, x, axis: Optional[int] = None, keepdims: bool = False):
        return np.sum(x, axis=axis, keepdims=keepdims)

    def abs(self, x):
        return np.abs(x)

    def roll(self, x, shift: int, axis: int = -1):
        return np.roll(x, shift, axis=axis)

    def einsum(self, subscripts: str, *operands):
        return np.einsum(subscripts, *operands)

    def cosine_similarity(self, queries, memory, eps: float = _EPS):
        scores = queries @ memory.T
        q_norm = np.linalg.norm(queries, axis=1)
        m_norm = np.linalg.norm(memory, axis=1)
        denom = np.outer(q_norm, m_norm)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                denom > eps, scores / np.where(denom > eps, denom, 1.0), 0.0
            )

    def transpose(self, x):
        return x.T

    def ones_like(self, x):
        return np.ones_like(x)

    def zeros_like(self, x):
        return np.zeros_like(x)

    # -------------------------------------------------------------- indexing

    def take_rows(self, x, idx):
        return x[np.asarray(idx, dtype=np.int64)]

    def set_rows(self, x, idx, values) -> None:
        x[np.asarray(idx, dtype=np.int64)] = values

    def take_columns(self, x, cols):
        return x[:, np.asarray(cols, dtype=np.int64)]

    def set_columns(self, x, cols, values) -> None:
        x[:, np.asarray(cols, dtype=np.int64)] = values

    def zero_columns(self, x, cols) -> None:
        x[:, np.asarray(cols, dtype=np.int64)] = 0

    def scatter_add_rows(self, target, idx, values) -> None:
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values, dtype=target.dtype)
        n_rows = target.shape[0]
        # ufunc.at is an order of magnitude slower than BLAS; when many
        # updates land on few rows (the classifier case: m samples vs k
        # classes), reduce via a one-hot matmul instead.
        if values.ndim == 2 and idx.size > max(n_rows, 4):
            onehot = np.zeros((n_rows, idx.size), dtype=target.dtype)
            onehot[idx, np.arange(idx.size)] = 1.0
            target += onehot @ values
        else:
            np.add.at(target, idx, values)

    def scatter_add_cells(self, target, rows, cols, values) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        np.add.at(
            target,
            (rows[:, None], cols[None, :]),
            np.asarray(values, dtype=target.dtype),
        )

    def argpartition_desc(self, x, k: int, axis: int = -1):
        if k >= np.shape(x)[axis]:
            return np.argsort(-np.asarray(x), axis=axis, kind="stable")
        return np.argpartition(-np.asarray(x), k - 1, axis=axis)
