"""Optional PyTorch backend (CPU or CUDA).

Auto-registered as ``"torch"`` (and ``"torch-cuda"`` when a GPU is visible)
by :mod:`repro.backend.registry` when torch is importable; this module never
imports torch at module scope, so the library works on torch-free machines.

Parity with the NumPy backend is by construction: all RNG draws happen via
NumPy generators (see :class:`~repro.backend.base.ArrayBackend`), so encoder
parameters and class memories are bit-identical across backends and
prediction differences can only come from floating-point summation order.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.backend.base import ArrayBackend


def torch_is_available() -> bool:
    """Whether PyTorch can be imported (cheap check, cached by importlib)."""
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


class TorchBackend(ArrayBackend):
    """:class:`~repro.backend.base.ArrayBackend` on ``torch.Tensor``.

    Parameters
    ----------
    device:
        Torch device string (``"cpu"``, ``"cuda"``, ``"cuda:1"``, ...).
    """

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        import torch

        self.device = torch.device(device)
        if self.device.type != "cpu":
            self.name = f"torch-{self.device.type}"

    @property
    def _torch(self) -> Any:
        # Resolved per call (a sys.modules lookup) instead of stored on the
        # instance: module-valued attributes make every model holding this
        # backend un-deepcopyable, which breaks perturb_classifier and the
        # whole robustness sweep.
        import torch

        return torch

    def _dtype(self, dtype: Any) -> Any:
        if dtype is None:
            return None
        return {
            np.dtype(np.float32): self._torch.float32,
            np.dtype(np.float64): self._torch.float64,
            np.dtype(np.int64): self._torch.int64,
            np.dtype(np.int32): self._torch.int32,
            np.dtype(np.int8): self._torch.int8,
        }[np.dtype(dtype)]

    # ------------------------------------------------------------ conversion

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        torch = self._torch
        if isinstance(x, torch.Tensor):
            out = x.to(self.device)
            return out if dtype is None else out.to(self._dtype(dtype))
        arr = np.asarray(x)
        if dtype is not None:
            arr = arr.astype(np.dtype(dtype), copy=False)
        return torch.as_tensor(arr, device=self.device)

    def to_numpy(self, x: Any) -> np.ndarray:
        if isinstance(x, self._torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def is_native(self, x: Any) -> bool:
        return isinstance(x, self._torch.Tensor)

    # ---------------------------------------------------------- construction

    def zeros(self, shape: Any, dtype: Any = np.float64) -> Any:
        return self._torch.zeros(
            tuple(np.atleast_1d(shape).tolist())
            if not isinstance(shape, tuple)
            else shape,
            dtype=self._dtype(dtype),
            device=self.device,
        )

    def empty(self, shape: Any, dtype: Any = np.float64) -> Any:
        return self._torch.empty(
            tuple(np.atleast_1d(shape).tolist())
            if not isinstance(shape, tuple)
            else shape,
            dtype=self._dtype(dtype),
            device=self.device,
        )

    def copy(self, x: Any) -> Any:
        return x.clone()

    # ------------------------------------------------------------ arithmetic

    def matmul(self, a: Any, b: Any) -> Any:
        return a @ b

    def norm(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        if axis is None:
            return self._torch.linalg.norm(x)
        return self._torch.linalg.norm(x, dim=axis, keepdim=keepdims)

    def cos(self, x: Any) -> Any:
        return self._torch.cos(x)

    def sin(self, x: Any) -> Any:
        return self._torch.sin(x)

    def tanh(self, x: Any) -> Any:
        return self._torch.tanh(x)

    def where(self, cond: Any, a: Any, b: Any) -> Any:
        torch = self._torch
        if not isinstance(a, torch.Tensor):
            a = torch.as_tensor(a, device=self.device)
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, device=self.device)
        return torch.where(cond, a, b)

    def sum(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        if axis is None:
            return self._torch.sum(x)
        return self._torch.sum(x, dim=axis, keepdim=keepdims)

    def abs(self, x: Any) -> Any:
        return self._torch.abs(x)

    def amin(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        if axis is None:
            return self._torch.amin(x)
        return self._torch.amin(x, dim=axis, keepdim=keepdims)

    def amax(
        self,
        x: Any,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> Any:
        if axis is None:
            return self._torch.amax(x)
        return self._torch.amax(x, dim=axis, keepdim=keepdims)

    def roll(self, x: Any, shift: int, axis: int = -1) -> Any:
        return self._torch.roll(x, shift, dims=axis)

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        return self._torch.einsum(subscripts, *operands)

    def transpose(self, x: Any) -> Any:
        return x.T

    def ones_like(self, x: Any) -> Any:
        return self._torch.ones_like(x)

    def zeros_like(self, x: Any) -> Any:
        return self._torch.zeros_like(x)

    # -------------------------------------------------------------- indexing

    def _index(self, idx: Any) -> Any:
        return self._torch.as_tensor(
            np.asarray(idx, dtype=np.int64), device=self.device
        )

    def take_rows(self, x: Any, idx: Any) -> Any:
        return x[self._index(idx)]

    def set_rows(self, x: Any, idx: Any, values: Any) -> None:
        x[self._index(idx)] = self.asarray(values, dtype=None).to(x.dtype)

    def take_columns(self, x: Any, cols: Any) -> Any:
        return x[:, self._index(cols)]

    def set_columns(self, x: Any, cols: Any, values: Any) -> None:
        x[:, self._index(cols)] = self.asarray(values, dtype=None).to(x.dtype)

    def zero_columns(self, x: Any, cols: Any) -> None:
        x[:, self._index(cols)] = 0

    def scatter_add_rows(self, target: Any, idx: Any, values: Any) -> None:
        values = self.asarray(values, dtype=None).to(target.dtype)
        target.index_add_(0, self._index(idx), values)

    def scatter_add_cells(
        self,
        target: Any,
        rows: Any,
        cols: Any,
        values: Any,
    ) -> None:
        rows = self._index(rows)
        cols = self._index(cols)
        values = self.asarray(values, dtype=None).to(target.dtype)
        target.index_put_(
            (rows[:, None], cols[None, :]), values, accumulate=True
        )

    def argpartition_desc(self, x: Any, k: int, axis: int = -1) -> Any:
        # torch has no partial partition; topk is its optimised equivalent.
        return self._torch.topk(x, min(k, x.shape[axis]), dim=axis).indices

    def fwht_rows(self, x: Any) -> Any:
        # Native tensor mirror of repro.hdc.fwht: each balanced Kronecker
        # factor of H_m is one batched GEMM along its axis, ping-ponged
        # between the input and one scratch tensor.  Per-sample operand
        # shapes are n-independent (row-count-invariant rounding) and the
        # transform honors the in-place contract for contiguous floating
        # native input.
        from repro.hdc import fwht as _fwht

        torch = self._torch
        if not isinstance(x, torch.Tensor):
            return super().fwht_rows(x)
        if x.ndim != 2:
            raise ValueError(f"fwht_rows needs a 2-D array, got {x.ndim}-D")
        n, m = x.shape
        if not _fwht.is_pow2(m):
            raise ValueError(
                f"fwht_rows needs a power-of-two column count, got {m}"
            )
        if not x.is_floating_point():
            x = x.to(torch.float64)
        elif not x.is_contiguous():
            x = x.contiguous()
        if m == 1 or n == 0:
            return x
        scratch = torch.empty_like(x)
        src, dst = x, scratch
        pre, post = 1, m
        for f in _fwht._factor_orders(m):
            post //= f
            H = torch.as_tensor(
                _fwht._h_factor(f, np.float64), device=x.device
            ).to(x.dtype)
            if post == 1:
                torch.matmul(
                    src.reshape(n, pre, f), H, out=dst.reshape(n, pre, f)
                )
            else:
                torch.matmul(
                    H,
                    src.reshape(n * pre, f, post),
                    out=dst.reshape(n * pre, f, post),
                )
            src, dst = dst, src
            pre *= f
        if src is not x:
            x.copy_(src)
        return x

    # ------------------------------------------------------- packed binary

    def packbits_rows(self, x: Any) -> np.ndarray:
        # Binarise on-device first: shipping the (n, D) bool mask to the
        # host moves 1 byte per cell instead of the 4-8 bytes of the float
        # encoding, then the host packs it with the fused NumPy path.
        from repro.hdc.packed import pack_bool_rows

        torch = self._torch
        if isinstance(x, torch.Tensor):
            mask = (x >= 0).detach().cpu().numpy()
        else:
            mask = np.asarray(x) >= 0
        return pack_bool_rows(mask)

    def _popcount_int64(self, x: Any) -> Any:
        # SWAR popcount on int64 words (torch has no uint64 and no native
        # popcount).  The usual logical-shift algorithm survives torch's
        # arithmetic right shift because every mask below clears the
        # sign-filled high bits before they are consumed.
        torch = self._torch
        m1 = torch.tensor(
            0x5555555555555555, dtype=torch.int64, device=x.device
        )
        m2 = torch.tensor(
            0x3333333333333333, dtype=torch.int64, device=x.device
        )
        m4 = torch.tensor(
            0x0F0F0F0F0F0F0F0F, dtype=torch.int64, device=x.device
        )
        h01 = torch.tensor(
            0x0101010101010101, dtype=torch.int64, device=x.device
        )
        x = x - ((x >> 1) & m1)
        x = (x & m2) + ((x >> 2) & m2)
        x = (x + (x >> 4)) & m4
        return (x * h01) >> 56

    def hamming_scores_packed(
        self,
        q_words: Any,
        m_words: Any,
        dim: int,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        # uint64 boundary words reinterpreted as int64 (same bit pattern),
        # scored natively with bitwise_xor + SWAR popcount.
        from repro.hdc.packed import words_per_row

        torch = self._torch
        Q = np.ascontiguousarray(np.asarray(q_words, dtype=np.uint64))
        M = np.ascontiguousarray(np.asarray(m_words, dtype=np.uint64))
        if Q.ndim == 1:
            Q = Q.reshape(1, -1)
        if M.ndim == 1:
            M = M.reshape(1, -1)
        if Q.shape[1] != M.shape[1]:
            raise ValueError(
                f"q_words and m_words disagree on word count: "
                f"{Q.shape[1]} vs {M.shape[1]}"
            )
        if dim <= 0 or words_per_row(dim) != Q.shape[1]:
            raise ValueError(
                f"dim={dim} does not match {Q.shape[1]} packed words"
            )
        q = torch.as_tensor(Q.view(np.int64), device=self.device)
        m = torch.as_tensor(M.view(np.int64), device=self.device)
        n = q.shape[0]
        step = n if chunk_size is None else max(1, int(chunk_size))
        out = np.empty((n, m.shape[0]), dtype=np.float64)
        for start in range(0, max(n, 1), step):
            stop = min(start + step, n)
            xor = q[start:stop, None, :] ^ m[None, :, :]
            counts = self._popcount_int64(xor).sum(dim=-1)
            scores = (float(dim) - 2.0 * counts.to(torch.float64)) / float(
                dim
            )
            out[start:stop] = scores.cpu().numpy()
        return out

    def topk_desc(self, scores: Any, k: int) -> Any:
        torch = self._torch
        if not isinstance(scores, torch.Tensor):
            return super().topk_desc(scores, k)
        values, indices = torch.topk(scores, min(k, scores.shape[1]), dim=1)
        return self.to_numpy(indices), self.to_numpy(values)
