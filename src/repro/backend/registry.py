"""Backend registry: resolve compute backends by name.

Mirrors the model/dataset registries: backends register under a short name
and everything that accepts ``backend=`` resolves through
:func:`get_backend`.  The NumPy backend is always present and is the
default; the torch backend self-registers when torch is importable (CPU
always, plus ``"torch-cuda"`` when a GPU is visible).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.torch_backend import TorchBackend, torch_is_available

BackendLike = Union[None, str, ArrayBackend]

_REGISTRY: Dict[str, ArrayBackend] = {}
_DEFAULT_NAME = "numpy"
_BOOTSTRAPPED = False


def register_backend(backend: ArrayBackend, *, overwrite: bool = False) -> None:
    """Register a backend instance under its ``name``."""
    key = backend.name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {key!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    _REGISTRY[key] = backend


def _bootstrap() -> None:
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    if _DEFAULT_NAME not in _REGISTRY:
        register_backend(NumpyBackend())
    if torch_is_available() and "torch" not in _REGISTRY:
        register_backend(TorchBackend("cpu"))
        import torch

        if torch.cuda.is_available():  # pragma: no cover - needs a GPU
            register_backend(TorchBackend("cuda"))


def get_backend(spec: BackendLike = None) -> ArrayBackend:
    """Resolve a backend spec to an :class:`ArrayBackend` instance.

    ``None`` returns the default (NumPy) backend; a string looks up the
    registry (case-insensitive); an :class:`ArrayBackend` instance passes
    through unchanged so callers can thread a custom backend end to end.
    """
    _bootstrap()
    if spec is None:
        return _REGISTRY[_DEFAULT_NAME]
    if isinstance(spec, ArrayBackend):
        return spec
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key not in _REGISTRY:
            raise KeyError(
                f"unknown backend {spec!r}; available: {sorted(_REGISTRY)}"
                + (
                    ""
                    if torch_is_available()
                    else " (install torch to enable the torch backend)"
                )
            )
        return _REGISTRY[key]
    raise TypeError(
        f"backend must be None, a name, or an ArrayBackend, got "
        f"{type(spec).__name__}"
    )


def supports_packed(spec: BackendLike = None) -> bool:
    """Whether the resolved backend provides the packed binary kernels.

    The capability flag for the bit-packed deploy path: ``True`` when the
    backend implements :meth:`~repro.backend.base.ArrayBackend.packbits_rows`
    and :meth:`~repro.backend.base.ArrayBackend.hamming_scores_packed`
    (every in-tree backend does, via the generic NumPy implementation at
    minimum).  Callers gate ``packed=True`` artifacts on this instead of
    probing methods.
    """
    return bool(getattr(get_backend(spec), "supports_packed", False))


def list_backends() -> Tuple[str, ...]:
    """Registered backend names (sorted)."""
    _bootstrap()
    return tuple(sorted(_REGISTRY))


def default_backend() -> ArrayBackend:
    """The library-wide default backend (NumPy)."""
    return get_backend(None)
