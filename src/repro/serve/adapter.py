"""Drift-aware online adaptation for a served model.

DistHD's first-class ``partial_fit`` protocol makes the served model a
*learner*, not a frozen artifact: when the traffic distribution moves, the
server can keep adapting while it serves.  This module provides the two
pieces:

- :class:`DriftDetector` — windowed accuracy / score-margin shift
  detection over labeled feedback.  A reference window (the first
  ``window`` observations after each baseline) is compared against a
  rolling recent window; a significant accuracy drop or margin collapse
  flags drift.
- :class:`OnlineAdapter` — consumes ``(x, y_true)`` feedback, feeds the
  detector, and on drift runs a background adaptation cycle:
  ``partial_fit`` the base classifier on the buffered feedback, rebuild
  the deploy artifact (re-quantize via
  :meth:`~repro.deploy.quantized.QuantizedHDCModel.refresh` for quantized
  deployments, snapshot copy otherwise), and hot-swap it into the
  :class:`~repro.serve.server.ModelServer`.

Adaptation runs through an :class:`~repro.engine.executor.Executor` on a
dedicated background thread, so the request path never blocks on
training; because adaptation mutates the live base classifier it must run
in-process (a :class:`~repro.engine.executor.SerialExecutor` — the
default; process pools are rejected).

**Locking contract.**  The *served* artifact is never trained in place:
the adapter mutates only its private base classifier and a standby deploy
artifact that is off rotation (and drained — see
:meth:`~repro.serve.server.ModelVersion.wait_drained`) before being
refreshed, so request threads never race a ``partial_fit``.  Concurrent
``predict`` against a model *while another thread runs ``partial_fit`` on
the same object* is still memory-safe — the versioned norm caches of
:class:`~repro.hdc.memory.AssociativeMemory` guarantee no stale cache
survives a mutation — but individual in-progress calls may mix pre- and
post-update values, which is exactly why the serving path swaps artifacts
instead.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np

from repro.analysis.annotations import guarded_by, make_lock
from repro.deploy.quantized import QuantizedHDCModel
from repro.engine.executor import Executor, SerialExecutor
from repro.serve.server import ModelServer
from repro.utils.validation import check_positive_int, check_probability


class DriftReport:
    """Outcome of one drift check (truthy when drift was flagged)."""

    def __init__(
        self,
        drifted: bool,
        reason: Optional[str] = None,
        reference: Optional[Dict[str, float]] = None,
        current: Optional[Dict[str, float]] = None,
    ) -> None:
        self.drifted = bool(drifted)
        self.reason = reason
        self.reference = reference
        self.current = current

    def __bool__(self) -> bool:
        return self.drifted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DriftReport(drifted={self.drifted}, reason={self.reason!r})"


class DriftDetector:
    """Windowed accuracy / score-margin drift detection.

    Parameters
    ----------
    window:
        Observations per window.  The first ``window`` observations after
        a (re)baseline form the frozen reference; the newest ``window``
        observations form the rolling current window.
    min_samples:
        Observations required in the current window before drift can be
        declared (also the floor for the reference window).
    acc_drop:
        Absolute accuracy drop (reference − current) that flags drift.
    margin_shrink:
        Relative mean-margin shrink that flags drift: current mean margin
        below ``(1 − margin_shrink) ×`` reference mean margin.  The margin
        of one observation is ``top1 − top2`` decision score — how
        decisively the model ranked its winner — so a collapse signals the
        inputs moving off the trained manifold even while labels still
        come back right.
    """

    def __init__(
        self,
        window: int = 256,
        min_samples: int = 64,
        acc_drop: float = 0.10,
        margin_shrink: float = 0.35,
    ) -> None:
        self.window = check_positive_int(window, "window")
        self.min_samples = check_positive_int(min_samples, "min_samples")
        if self.min_samples > self.window:
            raise ValueError(
                f"min_samples ({min_samples}) cannot exceed window ({window})"
            )
        self.acc_drop = check_probability(acc_drop, "acc_drop")
        self.margin_shrink = check_probability(margin_shrink, "margin_shrink")
        self._ref_correct: list = []
        self._ref_margins: list = []
        self._recent: Deque[Tuple[bool, float]] = deque(maxlen=self.window)
        self.n_observed = 0

    # -------------------------------------------------------------- feeding

    def observe(self, correct: bool, margin: float) -> None:
        """Record one labeled observation."""
        self.n_observed += 1
        if len(self._ref_correct) < self.window:
            self._ref_correct.append(bool(correct))
            self._ref_margins.append(float(margin))
        self._recent.append((bool(correct), float(margin)))

    def rebaseline(self) -> None:
        """Forget everything; the next observations form a new reference.

        Called after each adaptation so the detector measures drift against
        the *adapted* model's behaviour, not the pre-adaptation one.
        """
        self._ref_correct.clear()
        self._ref_margins.clear()
        self._recent.clear()

    # ------------------------------------------------------------- checking

    def _stats(self, correct: Any, margins: Any) -> Dict[str, float]:
        return {
            "n": float(len(correct)),
            "accuracy": float(np.mean(correct)) if correct else float("nan"),
            "mean_margin": float(np.mean(margins)) if margins else float("nan"),
        }

    def check(self) -> DriftReport:
        """Compare the rolling window against the reference."""
        if (
            len(self._ref_correct) < self.min_samples
            or len(self._recent) < self.min_samples
        ):
            return DriftReport(False, reason="insufficient samples")
        recent_correct = [c for c, _ in self._recent]
        recent_margins = [m for _, m in self._recent]
        reference = self._stats(self._ref_correct, self._ref_margins)
        current = self._stats(recent_correct, recent_margins)
        if current["accuracy"] < reference["accuracy"] - self.acc_drop:
            return DriftReport(True, "accuracy drop", reference, current)
        ref_margin = reference["mean_margin"]
        if (
            ref_margin > 0
            and current["mean_margin"]
            < (1.0 - self.margin_shrink) * ref_margin
        ):
            return DriftReport(True, "margin collapse", reference, current)
        return DriftReport(False, None, reference, current)


@guarded_by(
    "_lock",
    "_feedback_x",
    "_feedback_y",
    "detector",
    "n_adaptations",
    "n_failed_cycles",
)
class OnlineAdapter:
    """Feed labeled feedback to a served model; adapt and hot-swap on drift.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.server.ModelServer` to promote adapted
        versions into.
    base_model:
        The trainable classifier behind the served artifact (must expose
        ``partial_fit``; see ``supports_streaming``).  The adapter owns
        this object: nothing else may train it concurrently.
    detector:
        Drift detector (default: :class:`DriftDetector` defaults).
    executor:
        Engine executor the adaptation cycle runs under, on the adapter's
        background thread.  Must be in-process (serial): adaptation
        mutates the live base classifier, which cannot cross a process
        boundary.
    feedback_buffer:
        Max labeled samples buffered for the next adaptation (newest
        kept).
    min_adapt_samples:
        Feedback samples required before an adaptation can run.
    bits:
        Re-quantization precision for quantized deployments.  ``None``
        auto-detects from the initially served artifact.
    """

    def __init__(
        self,
        server: ModelServer,
        base_model: Any,
        *,
        detector: Optional[DriftDetector] = None,
        executor: Optional[Executor] = None,
        feedback_buffer: int = 1024,
        min_adapt_samples: int = 32,
        bits: Optional[int] = None,
    ) -> None:
        if not callable(getattr(base_model, "partial_fit", None)):
            raise TypeError(
                f"base_model {type(base_model).__name__} does not support "
                "incremental training (no partial_fit)"
            )
        executor = executor if executor is not None else SerialExecutor()
        if executor.n_jobs > 1:
            raise ValueError(
                "adaptation mutates the live base classifier and must run "
                f"in-process; got a {type(executor).__name__} with "
                f"n_jobs={executor.n_jobs} (use SerialExecutor)"
            )
        self.server = server
        self.base_model = base_model
        self.detector = detector if detector is not None else DriftDetector()
        self.executor = executor
        self.feedback_buffer = check_positive_int(
            feedback_buffer, "feedback_buffer"
        )
        self.min_adapt_samples = check_positive_int(
            min_adapt_samples, "min_adapt_samples"
        )
        self._feedback_x: Deque[np.ndarray] = deque(maxlen=self.feedback_buffer)
        self._feedback_y: Deque[int] = deque(maxlen=self.feedback_buffer)
        self._lock = make_lock("OnlineAdapter._lock")
        self._adapting = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.n_adaptations = 0
        self.n_failed_cycles = 0
        self.last_drift: Optional[DriftReport] = None
        self.last_error: Optional[BaseException] = None
        # Publish adaptation health into the server's obs registry (when
        # the server was built with one): cycle/failure counters plus the
        # hot-swap latency distribution, so drift response shows up on
        # the same scrape endpoint as request latency.
        obs = getattr(server, "obs", None)
        if obs is not None:
            reg = obs.registry
            self._m_cycles = reg.counter(
                "repro_adapt_cycles_total", "Completed adaptation cycles."
            )
            self._m_failures = reg.counter(
                "repro_adapt_failures_total", "Failed adaptation cycles."
            )
            self._m_swap_latency = reg.histogram(
                "repro_adapt_swap_seconds",
                "Deploy (hot-swap) latency of adapted artifacts.",
            )
        else:
            self._m_cycles = self._m_failures = self._m_swap_latency = None
        if server.model is base_model:
            # The served object must never be the trainee: partial_fit on
            # it would race live predict batches (the exact hazard the
            # swap protocol exists to prevent).  Promote an immutable
            # snapshot before accepting any feedback.
            import copy

            server.deploy(
                copy.deepcopy(base_model), warm=False,
                source="adapter-snapshot",
            )
        served = server.model
        if bits is None and isinstance(served, QuantizedHDCModel):
            bits = served.bits
        self.bits = bits
        # Inference-memory bound carried onto every promoted artifact,
        # including rebuilds after a standby loss.
        self._chunk_size = getattr(served, "chunk_size", None)
        # Packed storage mode propagates the same way: a served bit-packed
        # artifact re-quantizes *and re-packs* on every promotion, so the
        # caller keeps seeing packed artifacts across hot-swaps.
        self._packed = bool(getattr(served, "packed", False))
        # Double-buffered deploy artifacts for quantized serving: the
        # standby (off rotation, drained) is refresh()ed in place and
        # promoted; the retired artifact becomes the next standby.
        self._standby: Optional[QuantizedHDCModel] = (
            QuantizedHDCModel(base_model, bits=self.bits,
                              chunk_size=self._chunk_size,
                              packed=self._packed)
            if isinstance(served, QuantizedHDCModel) else None
        )

    # ---------------------------------------------------------------- feedback

    def feedback(
        self,
        x: Any,
        y_true: Any,
        scores: Any = None,
    ) -> Optional[DriftReport]:
        """Record labeled feedback for one sample (or a small block).

        ``scores`` — the per-class decision scores the server returned
        for these rows, if the caller kept them; otherwise they are
        recomputed against the active version (off the batcher, so
        feedback never competes with request traffic for batch slots).

        Returns the drift report when this feedback *triggered* an
        adaptation, else ``None``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        y_true = np.atleast_1d(np.asarray(y_true))
        if y_true.shape[0] != x.shape[0]:
            raise ValueError(
                f"x and y_true disagree on sample count: "
                f"{x.shape[0]} vs {y_true.shape[0]}"
            )
        model = self.server.model
        if scores is None:
            scores = model.decision_scores(x)
        scores = np.asarray(scores, dtype=np.float64)
        classes = np.asarray(model.classes_)
        predicted = classes[np.argmax(scores, axis=1)]
        if scores.shape[1] >= 2:
            part = np.partition(scores, -2, axis=1)
            margins = part[:, -1] - part[:, -2]
        else:  # pragma: no cover - single-class scores are degenerate
            margins = scores[:, -1]
        with self._lock:
            for i in range(x.shape[0]):
                self._feedback_x.append(x[i])
                self._feedback_y.append(y_true[i])
                self.detector.observe(
                    bool(predicted[i] == y_true[i]), float(margins[i])
                )
        return self.maybe_adapt()

    # -------------------------------------------------------------- adaptation

    def maybe_adapt(self) -> Optional[DriftReport]:
        """Run the drift check; schedule a background adaptation on drift."""
        if self._adapting.is_set():
            return None
        with self._lock:
            if len(self._feedback_x) < self.min_adapt_samples:
                return None
            report = self.detector.check()
        if not report:
            return None
        if not self._try_begin():
            return None  # lost the race to a concurrent feedback thread
        self.last_drift = report
        self._launch()
        return report

    def adapt_now(self, wait: bool = True) -> None:
        """Force one adaptation cycle regardless of drift state.

        With ``wait`` the call blocks until the new version is live —
        the deterministic entry point for tests and the load harness.
        """
        with self._lock:
            if not self._feedback_x:
                raise RuntimeError("no buffered feedback to adapt on")
        if not self._try_begin():
            if wait:
                self.join()
            return
        self.last_drift = DriftReport(True, reason="forced")
        self._launch()
        if wait:
            self.join()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-progress adaptation to finish."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)

    def _try_begin(self) -> bool:
        """Claim the single adaptation slot (test-and-set under the lock).

        An unlocked ``_adapting.is_set()`` check followed by ``set()``
        would let two feedback threads both observe "idle" and launch
        overlapping cycles — two concurrent ``partial_fit`` writers on
        the same base model, which the memory's locking contract forbids.
        """
        with self._lock:
            if self._adapting.is_set():
                return False
            self._adapting.set()
            return True

    def _launch(self) -> None:
        """Spawn the cycle thread; the caller must hold the slot
        (:meth:`_try_begin`)."""
        previous = self._thread
        if previous is not None and previous.is_alive():
            # The prior cycle has cleared _adapting and is in its final
            # instructions; reap it so join() tracks one live thread.
            previous.join(timeout=5.0)
        self._thread = threading.Thread(
            target=self._run_cycle, name="repro-online-adapter", daemon=True
        )
        self._thread.start()

    def _run_cycle(self) -> None:
        try:
            # One adaptation is one executor task: the seam future
            # multi-worker serving schedules through.
            self.executor.map(self._adapt_task, [None])
        except BaseException as exc:  # noqa: BLE001 - background thread
            # A daemon thread's traceback is easy to miss; record the
            # failure so stats()/callers can see the cycle died (the
            # drained feedback was re-buffered by _adapt_task), and file
            # a structured problem event on the server's metrics sink so
            # silent adaptation failures reach the stats() surface.
            self.last_error = exc
            with self._lock:
                self.n_failed_cycles += 1
            if self._m_failures is not None:
                self._m_failures.inc()
            self.server.metrics.record_problem(
                "adaptation-failure", repr(exc)
            )
        finally:
            self._adapting.clear()

    def _adapt_task(self, _: Any = None) -> None:
        with self._lock:
            if not self._feedback_x:
                return  # drained by a cycle that raced our launch
            X = np.vstack(list(self._feedback_x))
            y = np.asarray(list(self._feedback_y))
            self._feedback_x.clear()
            self._feedback_y.clear()
        try:
            self._promote(X, y)
        except BaseException:
            # Don't lose the drained feedback with the failed cycle.  The
            # drained rows are *older* than anything that arrived during
            # the cycle, so they go in first and the fresh rows re-append
            # behind them — on ring overflow the newest samples win.
            with self._lock:
                fresh = list(zip(self._feedback_x, self._feedback_y))
                self._feedback_x.clear()
                self._feedback_y.clear()
                for row, label in [*zip(X, y), *fresh]:
                    self._feedback_x.append(row)
                    self._feedback_y.append(label)
            raise

    def _promote(self, X: np.ndarray, y: np.ndarray) -> None:
        self.base_model.partial_fit(X, y)
        artifact = self._next_artifact()
        retired = self.server.active_version
        retired_artifact = retired.model
        swap_start = time.perf_counter()
        self.server.deploy(artifact, warm=True, source="online-adapter")
        if self._m_swap_latency is not None:
            self._m_swap_latency.observe(time.perf_counter() - swap_start)
        if self._standby is not None:
            # The retired artifact becomes the next standby once no
            # in-flight batch still reads it — but only when it actually
            # re-quantizes from our base classifier (a v1 served from a
            # disk archive wraps a static LoadedHDCModel and would
            # refresh() back to stale state).  A version that failed to
            # drain is never reused: refreshing it could tear a batch
            # still scoring against it.
            drained = self.server.wait_drained(retired, timeout=30.0)
            self._standby = (
                retired_artifact
                if drained
                and isinstance(retired_artifact, QuantizedHDCModel)
                and retired_artifact.classifier is self.base_model
                else None
            )
        with self._lock:
            self.detector.rebaseline()
            self.n_adaptations += 1
        if self._m_cycles is not None:
            self._m_cycles.inc()

    def _next_artifact(self) -> Any:
        """The v(N+1) deploy artifact for the adapted base classifier."""
        if self._standby is not None:
            return self._standby.refresh()
        if self.bits is not None:
            return QuantizedHDCModel(
                self.base_model, bits=self.bits,
                chunk_size=self._chunk_size, packed=self._packed,
            )
        # Raw serving: snapshot the adapted learner so the served object
        # is never trained in place.
        import copy

        return copy.deepcopy(self.base_model)

    # ------------------------------------------------------------------ stats

    def stats(self) -> Dict[str, object]:
        # Everything the adaptation cycle writes is read under the lock:
        # the pre-lint revision read n_adaptations and the detector
        # outside it, racing _promote's rebaseline/bump (the unguarded
        # accesses `repro lint` flagged on this tree).
        with self._lock:
            buffered = len(self._feedback_x)
            n_adaptations = self.n_adaptations
            n_failed_cycles = self.n_failed_cycles
            observed = self.detector.n_observed
        return {
            "n_adaptations": n_adaptations,
            "n_failed_cycles": n_failed_cycles,
            "adapting": self._adapting.is_set(),
            "buffered_feedback": buffered,
            "observed": observed,
            "last_drift_reason": (
                self.last_drift.reason if self.last_drift else None
            ),
            "last_error": repr(self.last_error) if self.last_error else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineAdapter(n_adaptations={self.n_adaptations}, "
            f"bits={self.bits})"
        )
