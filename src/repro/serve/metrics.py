"""Request-level serving metrics.

:class:`ServerMetrics` is the shared, thread-safe metrics sink behind a
:class:`~repro.serve.server.ModelServer`: every finished request records
its end-to-end latency, every flushed micro-batch records its size, and
every hot-swap bumps the swap counter.  :meth:`ServerMetrics.snapshot`
renders the current state as a plain dict (the "stats endpoint" payload) —
throughput, p50/p95/p99 latency, the batch-size histogram and swap/error
counts.

Latencies are kept in a bounded ring buffer (newest ``window`` requests)
so percentiles reflect recent behaviour and memory stays O(window) under
sustained traffic; counters cover the server's whole lifetime.

Beyond throughput/latency, the sink carries the serving stack's
**structured problem-event log**: :meth:`ServerMetrics.record_problem`
appends a timestamped ``{"kind", "detail"}`` record (worker crashes,
circuit-breaker trips, swap rollbacks, adaptation failures, ...) into a
bounded deque surfaced verbatim in :meth:`ServerMetrics.snapshot` — so
silent failures become operator-visible without a separate log pipeline.

When constructed with an :class:`repro.obs.Observability` bundle, every
recording call additionally publishes into the bundle's typed metrics
registry (Prometheus names ``repro_*`` — see ``docs/observability.md``)
and problem events are mirrored into its flight recorder, so the
in-process snapshot and the scrape endpoint can never disagree on what
was counted.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.annotations import guarded_by, make_lock
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs import Observability

#: Percentiles the latency summary reports, in order.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0, 99.9)

#: Most recent problem events kept (older ones age out of the snapshot).
PROBLEM_LOG_LIMIT = 256

#: Micro-batch size histogram boundaries for the obs registry (rows per
#: flushed batch; powers of two up to the default max_batch_size ceiling).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def percentile_nearest_rank(sorted_values: np.ndarray, pct: float) -> float:
    """The nearest-rank percentile of an ascending-sorted 1-D array.

    ``index = ceil(pct/100 * n) - 1`` — the classical definition: the
    smallest value such that at least ``pct`` percent of samples are <=
    it.  Unlike interpolating estimators this always returns an observed
    sample, which keeps tail percentiles (p99.9 over a few thousand
    samples) honest instead of inventing values between the two largest
    outliers.  This is the single shared implementation behind every
    serving latency summary.
    """
    n = sorted_values.size
    if n == 0:
        raise ValueError("percentile of empty array")
    index = max(int(math.ceil(pct / 100.0 * n)) - 1, 0)
    return float(sorted_values[min(index, n - 1)])


def latency_summary_ms(latencies_s: np.ndarray) -> Optional[Dict[str, float]]:
    """p50/p95/p99/p99.9/mean/max of latencies (seconds in, ms out).

    The one summary shape every serving surface reports —
    :meth:`ServerMetrics.snapshot` and the load generator's
    :meth:`~repro.serve.loadgen.LoadReport.latency_ms` both render
    through it.  Percentiles are nearest-rank (see
    :func:`percentile_nearest_rank`).  ``None`` when there are no
    samples.
    """
    latencies_s = np.asarray(latencies_s, dtype=np.float64)
    if latencies_s.size == 0:
        return None
    ms = np.sort(latencies_s * 1e3)
    summary = {
        f"p{pct:g}": percentile_nearest_rank(ms, pct)
        for pct in LATENCY_PERCENTILES
    }
    summary["mean"] = float(np.mean(ms))
    summary["max"] = float(ms[-1])
    return summary


@guarded_by(
    "_lock",
    "_latencies",
    "_latency_pos",
    "_latency_count",
    "_batch_sizes",
    "_n_errors",
    "_n_swaps",
    "_n_shed",
    "_n_retries",
    "_stage_encode_s",
    "_stage_score_s",
    "_stage_batches",
    "_problems",
)
class ServerMetrics:
    """Thread-safe counters + latency/batch-size distributions.

    Parameters
    ----------
    window:
        How many of the most recent request latencies the percentile
        summary is computed over (older samples age out of the ring).
    obs:
        Optional :class:`repro.obs.Observability` bundle; when given,
        every recording call also publishes into its metrics registry
        and problem events mirror into its flight recorder.
    """

    def __init__(
        self, window: int = 8192, *, obs: Optional["Observability"] = None
    ) -> None:
        self.window = check_positive_int(window, "window")
        self.obs = obs
        if obs is not None:
            reg = obs.registry
            self._m_requests = reg.counter(
                "repro_requests_total", "Completed requests (lifetime)."
            )
            self._m_latency = reg.histogram(
                "repro_request_latency_seconds",
                "End-to-end request latency.",
            )
            self._m_errors = reg.counter(
                "repro_errors_total", "Failed requests."
            )
            self._m_swaps = reg.counter(
                "repro_swaps_total", "Completed model hot-swaps."
            )
            self._m_shed = reg.counter(
                "repro_shed_total", "Requests rejected by admission control."
            )
            self._m_retries = reg.counter(
                "repro_retries_total",
                "In-flight requests re-dispatched after worker loss.",
            )
            self._m_batch = reg.histogram(
                "repro_batch_size", "Coalesced rows per flushed micro-batch.",
                buckets=BATCH_SIZE_BUCKETS,
            )
            self._m_stage_encode = reg.counter(
                "repro_stage_encode_seconds_total",
                "Cumulative encode-stage seconds across staged batches.",
            )
            self._m_stage_score = reg.counter(
                "repro_stage_score_seconds_total",
                "Cumulative score-stage seconds across staged batches.",
            )
            self._m_problems = reg.counter(
                "repro_problems_total", "Structured problem events by kind.",
                labelnames=("kind",),
            )
        else:
            self._m_requests = self._m_latency = self._m_errors = None
            self._m_swaps = self._m_shed = self._m_retries = None
            self._m_batch = self._m_stage_encode = None
            self._m_stage_score = self._m_problems = None
        self._lock = make_lock("ServerMetrics._lock")
        self._started = time.perf_counter()
        self._latencies = np.zeros(self.window, dtype=np.float64)
        self._latency_pos = 0
        self._latency_count = 0  # lifetime total (ring holds min(., window))
        self._batch_sizes: Dict[int, int] = {}
        self._n_errors = 0
        self._n_swaps = 0
        self._n_shed = 0
        self._n_retries = 0
        self._stage_encode_s = 0.0
        self._stage_score_s = 0.0
        self._stage_batches = 0
        self._problems: Deque[Dict[str, object]] = deque(
            maxlen=PROBLEM_LOG_LIMIT
        )

    # ------------------------------------------------------------- recording

    def record_request(self, latency_s: float) -> None:
        """Record one completed request's end-to-end latency in seconds."""
        with self._lock:
            self._latencies[self._latency_pos] = latency_s
            self._latency_pos = (self._latency_pos + 1) % self.window
            self._latency_count += 1
        if self._m_requests is not None:
            self._m_requests.inc()
            self._m_latency.observe(latency_s)

    def record_requests(self, latencies_s: Sequence[float]) -> None:
        """Record a whole micro-batch group's latencies at once.

        The batcher resolves a group per flush; recording it with one
        ring-lock acquisition and one registry-lock histogram update
        keeps metrics off the per-request critical path."""
        if not latencies_s:
            return
        with self._lock:
            for latency_s in latencies_s:
                self._latencies[self._latency_pos] = latency_s
                self._latency_pos = (self._latency_pos + 1) % self.window
            self._latency_count += len(latencies_s)
        if self._m_requests is not None:
            self._m_requests.inc(len(latencies_s))
            self._m_latency.observe_many(latencies_s)

    def record_batch(self, size: int) -> None:
        """Record one flushed micro-batch of ``size`` coalesced rows."""
        size = int(size)
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        if self._m_batch is not None:
            self._m_batch.observe(size)

    def record_error(self) -> None:
        """Record one failed request."""
        with self._lock:
            self._n_errors += 1
        if self._m_errors is not None:
            self._m_errors.inc()

    def record_swap(self) -> None:
        """Record one completed model hot-swap."""
        with self._lock:
            self._n_swaps += 1
        if self._m_swaps is not None:
            self._m_swaps.inc()

    def record_shed(self) -> None:
        """Record one request rejected by admission control (shed load —
        deliberate backpressure, counted separately from errors)."""
        with self._lock:
            self._n_shed += 1
        if self._m_shed is not None:
            self._m_shed.inc()

    def record_retry(self) -> None:
        """Record one in-flight request re-dispatched after worker loss."""
        with self._lock:
            self._n_retries += 1
        if self._m_retries is not None:
            self._m_retries.inc()

    def record_stage_times(self, encode_s: float, score_s: float) -> None:
        """Record one micro-batch's per-stage split: encode vs score.

        Accumulated lifetime totals; the snapshot reports both the totals
        and the encode share, so an encoder regression (the stage the
        structured O(D log D) encoders exist to shrink) is visible
        separately from scorer drift.
        """
        with self._lock:
            self._stage_encode_s += float(encode_s)
            self._stage_score_s += float(score_s)
            self._stage_batches += 1
        if self._m_stage_encode is not None:
            self._m_stage_encode.inc(float(encode_s))
            self._m_stage_score.inc(float(score_s))

    def record_problem(self, kind: str, detail: str = "") -> None:
        """Append one structured problem event to the bounded log.

        ``kind`` is a stable machine-readable tag (``worker-crashed``,
        ``circuit-open``, ``swap-rollback``, ``adaptation-failure``, ...);
        ``detail`` is free-form context for the operator.
        """
        event = {
            "ts": float(time.time()),
            "kind": str(kind),
            "detail": str(detail),
        }
        with self._lock:
            self._problems.append(event)
        if self._m_problems is not None:
            self._m_problems.labels(kind=str(kind)).inc()
        if self.obs is not None:
            self.obs.recorder.record_event(str(kind), str(detail))

    # ------------------------------------------------------------- reporting

    @property
    def n_requests(self) -> int:
        with self._lock:
            return self._latency_count

    @property
    def n_swaps(self) -> int:
        with self._lock:
            return self._n_swaps

    @property
    def n_errors(self) -> int:
        with self._lock:
            return self._n_errors

    @property
    def n_shed(self) -> int:
        with self._lock:
            return self._n_shed

    @property
    def n_retries(self) -> int:
        with self._lock:
            return self._n_retries

    def problems(self) -> List[Dict[str, object]]:
        """The recent problem events, oldest first (bounded copy)."""
        with self._lock:
            return list(self._problems)

    def problem_counts(self) -> Dict[str, int]:
        """Per-kind counts over the retained problem events."""
        counts: Dict[str, int] = {}
        with self._lock:
            events = list(self._problems)
        for event in events:
            kind = str(event["kind"])
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def snapshot(self) -> Dict[str, object]:
        """The stats-endpoint payload: one JSON-ready dict.

        Keys: ``uptime_s``, ``n_requests``, ``n_errors``, ``n_swaps``,
        ``n_shed``, ``n_retries``, ``throughput_rps`` (lifetime requests /
        uptime), ``latency_ms`` (p50/p95/p99/mean/max over the recent
        window, ``None`` when no requests have completed yet),
        ``batch_sizes`` (exact-size histogram), ``mean_batch_size``,
        ``stages`` (cumulative encode/score stage seconds and the encode
        share, ``None`` until a staged batch has been recorded), and
        ``problems`` (the recent structured problem events plus per-kind
        counts).
        """
        with self._lock:
            uptime = max(time.perf_counter() - self._started, 1e-9)
            count = min(self._latency_count, self.window)
            recent = self._latencies[:count].copy()
            histogram = dict(sorted(self._batch_sizes.items()))
            total = self._latency_count
            errors = self._n_errors
            swaps = self._n_swaps
            shed = self._n_shed
            retries = self._n_retries
            stage_encode = self._stage_encode_s
            stage_score = self._stage_score_s
            stage_batches = self._stage_batches
            problems = list(self._problems)

        latency = latency_summary_ms(recent)
        n_batched = sum(size * n for size, n in histogram.items())
        n_batches = sum(histogram.values())
        counts: Dict[str, int] = {}
        for event in problems:
            kind = str(event["kind"])
            counts[kind] = counts.get(kind, 0) + 1
        return {
            "uptime_s": float(uptime),
            "n_requests": int(total),
            "n_errors": int(errors),
            "n_swaps": int(swaps),
            "n_shed": int(shed),
            "n_retries": int(retries),
            "throughput_rps": float(total / uptime),
            "latency_ms": latency,
            "batch_sizes": {str(k): int(v) for k, v in histogram.items()},
            "mean_batch_size": (
                float(n_batched / n_batches) if n_batches else None
            ),
            "stages": (
                {
                    "n_batches": int(stage_batches),
                    "encode_s": float(stage_encode),
                    "score_s": float(stage_score),
                    "encode_fraction": (
                        float(stage_encode / (stage_encode + stage_score))
                        if (stage_encode + stage_score) > 0 else None
                    ),
                }
                if stage_batches else None
            ),
            "problems": {
                "counts": dict(sorted(counts.items())),
                "recent": problems[-32:],
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServerMetrics(n_requests={self.n_requests}, "
            f"n_swaps={self.n_swaps})"
        )
