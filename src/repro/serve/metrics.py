"""Request-level serving metrics.

:class:`ServerMetrics` is the shared, thread-safe metrics sink behind a
:class:`~repro.serve.server.ModelServer`: every finished request records
its end-to-end latency, every flushed micro-batch records its size, and
every hot-swap bumps the swap counter.  :meth:`ServerMetrics.snapshot`
renders the current state as a plain dict (the "stats endpoint" payload) —
throughput, p50/p95/p99 latency, the batch-size histogram and swap/error
counts.

Latencies are kept in a bounded ring buffer (newest ``window`` requests)
so percentiles reflect recent behaviour and memory stays O(window) under
sustained traffic; counters cover the server's whole lifetime.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.analysis.annotations import guarded_by, make_lock
from repro.utils.validation import check_positive_int

#: Percentiles the latency summary reports, in order.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def latency_summary_ms(latencies_s: np.ndarray) -> Optional[Dict[str, float]]:
    """p50/p95/p99/mean/max of latencies (seconds in, milliseconds out).

    The one summary shape every serving surface reports —
    :meth:`ServerMetrics.snapshot` and the load generator's
    :meth:`~repro.serve.loadgen.LoadReport.latency_ms` both render
    through it.  ``None`` when there are no samples.
    """
    latencies_s = np.asarray(latencies_s, dtype=np.float64)
    if latencies_s.size == 0:
        return None
    ms = latencies_s * 1e3
    summary = {
        f"p{pct:g}": float(np.percentile(ms, pct))
        for pct in LATENCY_PERCENTILES
    }
    summary["mean"] = float(np.mean(ms))
    summary["max"] = float(np.max(ms))
    return summary


@guarded_by(
    "_lock",
    "_latencies",
    "_latency_pos",
    "_latency_count",
    "_batch_sizes",
    "_n_errors",
    "_n_swaps",
)
class ServerMetrics:
    """Thread-safe counters + latency/batch-size distributions.

    Parameters
    ----------
    window:
        How many of the most recent request latencies the percentile
        summary is computed over (older samples age out of the ring).
    """

    def __init__(self, window: int = 8192) -> None:
        self.window = check_positive_int(window, "window")
        self._lock = make_lock("ServerMetrics._lock")
        self._started = time.perf_counter()
        self._latencies = np.zeros(self.window, dtype=np.float64)
        self._latency_pos = 0
        self._latency_count = 0  # lifetime total (ring holds min(., window))
        self._batch_sizes: Dict[int, int] = {}
        self._n_errors = 0
        self._n_swaps = 0

    # ------------------------------------------------------------- recording

    def record_request(self, latency_s: float) -> None:
        """Record one completed request's end-to-end latency in seconds."""
        with self._lock:
            self._latencies[self._latency_pos] = latency_s
            self._latency_pos = (self._latency_pos + 1) % self.window
            self._latency_count += 1

    def record_batch(self, size: int) -> None:
        """Record one flushed micro-batch of ``size`` coalesced rows."""
        size = int(size)
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    def record_error(self) -> None:
        """Record one failed request."""
        with self._lock:
            self._n_errors += 1

    def record_swap(self) -> None:
        """Record one completed model hot-swap."""
        with self._lock:
            self._n_swaps += 1

    # ------------------------------------------------------------- reporting

    @property
    def n_requests(self) -> int:
        with self._lock:
            return self._latency_count

    @property
    def n_swaps(self) -> int:
        with self._lock:
            return self._n_swaps

    @property
    def n_errors(self) -> int:
        with self._lock:
            return self._n_errors

    def snapshot(self) -> Dict[str, object]:
        """The stats-endpoint payload: one JSON-ready dict.

        Keys: ``uptime_s``, ``n_requests``, ``n_errors``, ``n_swaps``,
        ``throughput_rps`` (lifetime requests / uptime), ``latency_ms``
        (p50/p95/p99/mean/max over the recent window, ``None`` when no
        requests have completed yet), ``batch_sizes`` (exact-size
        histogram) and ``mean_batch_size``.
        """
        with self._lock:
            uptime = max(time.perf_counter() - self._started, 1e-9)
            count = min(self._latency_count, self.window)
            recent = self._latencies[:count].copy()
            histogram = dict(sorted(self._batch_sizes.items()))
            total = self._latency_count
            errors = self._n_errors
            swaps = self._n_swaps

        latency = latency_summary_ms(recent)
        n_batched = sum(size * n for size, n in histogram.items())
        n_batches = sum(histogram.values())
        return {
            "uptime_s": float(uptime),
            "n_requests": int(total),
            "n_errors": int(errors),
            "n_swaps": int(swaps),
            "throughput_rps": float(total / uptime),
            "latency_ms": latency,
            "batch_sizes": {str(k): int(v) for k, v in histogram.items()},
            "mean_batch_size": (
                float(n_batched / n_batches) if n_batches else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServerMetrics(n_requests={self.n_requests}, "
            f"n_swaps={self.n_swaps})"
        )
