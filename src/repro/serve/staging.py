"""Shared staged scoring: encode and score timed as separate stages.

Both serving paths want the same split — :class:`~repro.serve.server.
ModelServer` feeds it to ``ServerMetrics.record_stage_times`` for the
single-process stats endpoint, and the fleet worker ships the two
timings back over the response pipe so :class:`~repro.serve.fleet.
FleetServer` stats expose the identical per-stage breakdown.  The split
is only taken when it is *exactly* the model's own unsplit path:

- :class:`~repro.deploy.quantized.QuantizedHDCModel`: ``encoder`` +
  ``score_encoded``, unchunked batches only (a chunked artifact windows
  internally and must keep doing so);
- the persistence layer's ``LoadedHDCModel``: ``encoder_`` +
  ``memory_.similarities``.

Anything else returns ``None`` and the caller falls back to the model's
own ``predict`` / ``decision_scores``.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

import numpy as np

__all__ = ["staged_scores"]


def staged_scores(
    model: Any, X: np.ndarray
) -> Optional[Tuple[np.ndarray, float, float]]:
    """Score ``X`` with per-stage timing: ``(scores, encode_s, score_s)``.

    Returns ``None`` when ``model`` has no cleanly splittable
    encode/score pipeline (see module docstring); timings are
    ``time.perf_counter`` deltas.
    """
    score_encoded = getattr(model, "score_encoded", None)
    if callable(score_encoded):
        encoder = getattr(model, "encoder", None)
        chunk = getattr(model, "chunk_size", None)
        if encoder is None or (
            chunk is not None and X.shape[0] > int(chunk)
        ):
            return None  # chunked artifact: defer to its own windowing
        scorer = score_encoded
    else:
        from repro.persistence import LoadedHDCModel

        if not isinstance(model, LoadedHDCModel):
            return None
        encoder = model.encoder_
        scorer = model.memory_.similarities
    start = time.perf_counter()
    encoded = encoder.encode(X)
    mid = time.perf_counter()
    scores = np.asarray(scorer(encoded))
    return scores, mid - start, time.perf_counter() - mid
