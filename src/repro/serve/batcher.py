"""Micro-batching: coalesce concurrent requests into bounded-latency batches.

Single-row inference wastes the library's batched kernels — encoding and
scoring one query at a time pays the full Python/dispatch overhead per row.
:class:`MicroBatcher` sits between callers and a batched handler: concurrent
:meth:`~MicroBatcher.submit` calls enqueue rows, a worker thread coalesces
them into one ``(n, q)`` batch, runs the handler once, and scatters the
row-aligned results back to each caller's future.

Two knobs bound the trade-off:

- ``max_batch_size`` — flush as soon as this many rows are pending (the
  throughput knob: bigger batches amortise dispatch further);
- ``max_wait_ms`` — flush no later than this after the *oldest* pending
  request arrived (the latency knob: an isolated request is delayed at
  most ``max_wait_ms`` plus one handler call).

A third knob, ``idle_flush_ms``, flushes *early* when the arrival stream
pauses: once no new request has arrived for that long, waiting out the
rest of the deadline cannot grow the batch (the clients that would fill
it are themselves waiting on this flush — the closed-loop case), so the
batch ships immediately.  Under sustained back-to-back arrivals the
deadline/size limits govern as usual.

Requests carry a ``kind`` tag (e.g. ``"predict"`` vs ``"scores"``) so one
batcher can front several batched operations; a flush groups the drained
requests by kind and runs one handler call per kind present.

Shutdown is loss-free: :meth:`close` stops intake, then the worker drains
and flushes everything still queued before exiting — no request is ever
dropped with a pending future.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.annotations import make_lock
from repro.obs.ids import wall_now
from repro.obs.trace import TraceContext, Tracer, span_record
from repro.utils.validation import check_positive_float, check_positive_int

#: ``handler(kind, X)``: run one coalesced ``(n, q)`` batch of ``kind``
#: requests; must return a result array whose first axis aligns with the
#: rows of ``X``.  With ``pass_context=True`` the handler is called as
#: ``handler(kind, X, ctx)`` where ``ctx`` is the *lead* trace context of
#: the batch (the first sampled request's), or ``None``.
BatchHandler = Callable[..., np.ndarray]


class _Request:
    """One pending request: rows in, a future out."""

    __slots__ = ("kind", "rows", "future", "enqueued_at", "ctx")

    def __init__(
        self,
        kind: str,
        rows: np.ndarray,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        self.kind = kind
        self.rows = rows
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()
        self.ctx = ctx


class MicroBatcher:
    """Coalesce concurrent requests into batches for a batched handler.

    Parameters
    ----------
    handler:
        ``handler(kind, X)`` — called on the worker thread with one
        stacked ``(n, q)`` float batch per request kind in a flush.
    max_batch_size:
        Row-count flush threshold.
    max_wait_ms:
        Deadline (milliseconds) from the oldest pending request's arrival
        to its flush.
    idle_flush_ms:
        Flush early once no new request has arrived for this long
        (milliseconds) — see the module docstring.
    on_group_done:
        Optional callback ``(latencies_s, ok)`` per resolved request
        group: the end-to-end latencies (seconds, submit order) of every
        request in the flushed group, and whether the group succeeded.
        One call per flush — per-request callbacks would put a lock
        round-trip per request on the batcher thread.
    on_batch:
        Optional callback ``(n_rows)`` per handler call.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Sampled requests (those
        submitted with a sampled ``ctx``) get a per-request ``serve``
        span covering queue wait + batch execution, and each handler
        call on a batch containing a sampled request gets a ``batch``
        span parented to that batch's lead context.  ``None`` (the
        default) keeps the hot path free of tracing branches.
    pass_context:
        Call the handler as ``handler(kind, X, ctx)`` with the batch's
        lead trace context so downstream stages (encode/score, fleet
        dispatch) can parent their spans to it.

    Notes
    -----
    A request may carry several rows (a small client-side batch); its
    future resolves to the result rows for exactly those rows.  Rows from
    different requests never mix results — the handler's output is split
    back along the same offsets the inputs were stacked at.
    """

    def __init__(
        self,
        handler: BatchHandler,
        *,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        idle_flush_ms: float = 0.2,
        on_group_done: Optional[Callable[[List[float], bool], None]] = None,
        on_batch: Optional[Callable[[int], None]] = None,
        tracer: Optional[Tracer] = None,
        pass_context: bool = False,
    ) -> None:
        self.handler = handler
        self._tracer = tracer
        self._pass_context = bool(pass_context)
        self.max_batch_size = check_positive_int(max_batch_size, "max_batch_size")
        self.max_wait_s = check_positive_float(max_wait_ms, "max_wait_ms") / 1e3
        self.idle_flush_s = (
            check_positive_float(idle_flush_ms, "idle_flush_ms") / 1e3
        )
        self._on_group_done = on_group_done
        self._on_batch = on_batch
        self._queue: "queue.Queue[_Request]" = queue.Queue()
        self._closed = threading.Event()
        self._drain_lock = make_lock("MicroBatcher._drain_lock")
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ intake

    def submit(
        self,
        kind: str,
        rows: Any,
        ctx: Optional[TraceContext] = None,
    ) -> Future:
        """Enqueue ``rows`` (one sample ``(q,)`` or a block ``(m, q)``).

        ``ctx`` is an optional trace context propagated to the handler
        and reported on the request's ``serve`` span.  Returns a future
        resolving to the handler's result rows for this request.  Raises
        ``RuntimeError`` after :meth:`close`.
        """
        if self._closed.is_set():
            raise RuntimeError("MicroBatcher is closed")
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"rows must be a sample (q,) or a non-empty block (m, q), "
                f"got shape {rows.shape}"
            )
        request = _Request(str(kind), rows, ctx)
        self._queue.put(request)
        if self._closed.is_set():
            # close() may have drained between our flag check and the
            # put; if the worker is already gone, nobody else will ever
            # see this request — flush it (and any peers) ourselves.
            self._drain_if_worker_dead()
        return request.future

    # ------------------------------------------------------------------ worker

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            pending = [first]
            n_rows = first.rows.shape[0]
            deadline = first.enqueued_at + self.max_wait_s
            # Coalesce until the size cap, the oldest request's deadline,
            # or an arrival pause (idle flush).  After close() waiting is
            # skipped entirely: drain whatever is queued immediately so
            # shutdown never waits out max_wait_ms.
            while n_rows < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                if self._closed.is_set():
                    remaining = 0.0
                try:
                    if remaining <= 0:
                        nxt = self._queue.get_nowait()
                    else:
                        nxt = self._queue.get(
                            timeout=min(remaining, self.idle_flush_s)
                        )
                except queue.Empty:
                    break
                pending.append(nxt)
                n_rows += nxt.rows.shape[0]
            self._flush(pending)

    def _lead_ctx(
        self, group: Sequence[_Request]
    ) -> Optional[TraceContext]:
        """The first sampled context in ``group`` — the batch's spans are
        parented to one representative request (span trees stay trees;
        the batch's row count is recorded as an attribute instead)."""
        if self._tracer is None or not self._tracer.enabled:
            return None
        for request in group:
            if request.ctx is not None and request.ctx.sampled:
                return request.ctx
        return None

    def _flush(self, pending: Sequence[_Request]) -> None:
        by_kind: Dict[str, List[_Request]] = {}
        for request in pending:
            by_kind.setdefault(request.kind, []).append(request)
        for kind, group in by_kind.items():
            lead_ctx = self._lead_ctx(group)
            # Everything — stacking included — stays inside the guard: a
            # width-mismatched pair of requests must fail *those* futures,
            # not escape _flush and kill the worker (stranding every
            # pending and future request).
            try:
                batch = (
                    group[0].rows if len(group) == 1
                    else np.vstack([r.rows for r in group])
                )
                if self._on_batch is not None:
                    self._on_batch(batch.shape[0])
                span = None
                if lead_ctx is not None:
                    span = self._tracer.start(
                        "batch", role="server", ctx=lead_ctx,
                        attrs={"kind": kind, "n_rows": int(batch.shape[0]),
                               "n_requests": len(group)},
                    )
                    handler_ctx: Optional[TraceContext] = span.context
                else:
                    handler_ctx = None
                try:
                    if self._pass_context:
                        result = np.asarray(
                            self.handler(kind, batch, handler_ctx)
                        )
                    else:
                        result = np.asarray(self.handler(kind, batch))
                finally:
                    if span is not None:
                        span.end()
                if result.shape[0] != batch.shape[0]:
                    raise RuntimeError(
                        f"handler returned {result.shape[0]} result rows "
                        f"for a {batch.shape[0]}-row batch"
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                self._resolve(group, None, exc)
            else:
                self._resolve(group, result, None)

    def _resolve(
        self,
        group: Sequence[_Request],
        result: Optional[np.ndarray],
        error: Optional[BaseException],
    ) -> None:
        now = time.perf_counter()
        tracing = self._tracer is not None and self._tracer.enabled
        wall = wall_now() if tracing else 0.0
        status = "ok" if error is None else "error"
        serve_records: List[Dict[str, object]] = []
        # Bookkeeping first, futures last: settling a future wakes its
        # waiting client thread, and a woken stampede contends with this
        # thread for the GIL — so every span/metric built after the first
        # set_result would run at the slowest possible moment.  Doing all
        # recording while the clients still sleep keeps the per-batch
        # tracing cost off the serving critical path.
        latencies: List[float] = []
        for request in group:
            latency = now - request.enqueued_at
            latencies.append(latency)
            if tracing and request.ctx is not None and request.ctx.sampled:
                # Queue wait + batch execution for this one request; the
                # wall anchor is reconstructed from the monotonic latency
                # so the hot submit path never reads the wall clock.
                serve_records.append(span_record(
                    "serve", "server", request.ctx,
                    wall - latency, latency,
                    status=status,
                    attrs={"kind": request.kind,
                           "n_rows": int(request.rows.shape[0])},
                ))
        if self._on_group_done is not None:
            self._on_group_done(latencies, error is None)
        if serve_records:
            # One ingest per resolved group: the tracer takes its ring
            # lock once for the whole batch instead of once per request.
            self._tracer.ingest(serve_records)
        offset = 0
        for request in group:
            stop = offset + request.rows.shape[0]
            if error is None:
                request.future.set_result(result[offset:stop])
            else:
                request.future.set_exception(error)
            offset = stop

    # --------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop intake, flush everything still pending, join the worker."""
        self._closed.set()
        self._worker.join(timeout=timeout)
        # A submit racing the shutdown flag can slip a request into the
        # queue after the worker's final empty check; flush those inline
        # so every accepted request resolves.  Only once the worker has
        # actually exited, though — a worker that outlived the join
        # timeout still owns the queue, and flushing alongside it would
        # run the handler on two threads at once.
        self._drain_if_worker_dead()

    def _drain_if_worker_dead(self) -> None:
        if self._worker.is_alive():
            return  # the live worker drains the queue before exiting
        with self._drain_lock:
            leftovers: List[_Request] = []
            while True:
                try:
                    leftovers.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if leftovers:
                self._flush(leftovers)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(max_batch_size={self.max_batch_size}, "
            f"max_wait_ms={self.max_wait_s * 1e3:g})"
        )
