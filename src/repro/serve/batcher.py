"""Micro-batching: coalesce concurrent requests into bounded-latency batches.

Single-row inference wastes the library's batched kernels — encoding and
scoring one query at a time pays the full Python/dispatch overhead per row.
:class:`MicroBatcher` sits between callers and a batched handler: concurrent
:meth:`~MicroBatcher.submit` calls enqueue rows, a worker thread coalesces
them into one ``(n, q)`` batch, runs the handler once, and scatters the
row-aligned results back to each caller's future.

Two knobs bound the trade-off:

- ``max_batch_size`` — flush as soon as this many rows are pending (the
  throughput knob: bigger batches amortise dispatch further);
- ``max_wait_ms`` — flush no later than this after the *oldest* pending
  request arrived (the latency knob: an isolated request is delayed at
  most ``max_wait_ms`` plus one handler call).

A third knob, ``idle_flush_ms``, flushes *early* when the arrival stream
pauses: once no new request has arrived for that long, waiting out the
rest of the deadline cannot grow the batch (the clients that would fill
it are themselves waiting on this flush — the closed-loop case), so the
batch ships immediately.  Under sustained back-to-back arrivals the
deadline/size limits govern as usual.

Requests carry a ``kind`` tag (e.g. ``"predict"`` vs ``"scores"``) so one
batcher can front several batched operations; a flush groups the drained
requests by kind and runs one handler call per kind present.

Shutdown is loss-free: :meth:`close` stops intake, then the worker drains
and flushes everything still queued before exiting — no request is ever
dropped with a pending future.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.annotations import make_lock
from repro.utils.validation import check_positive_float, check_positive_int

#: ``handler(kind, X)``: run one coalesced ``(n, q)`` batch of ``kind``
#: requests; must return a result array whose first axis aligns with the
#: rows of ``X``.
BatchHandler = Callable[[str, np.ndarray], np.ndarray]


class _Request:
    """One pending request: rows in, a future out."""

    __slots__ = ("kind", "rows", "future", "enqueued_at")

    def __init__(self, kind: str, rows: np.ndarray) -> None:
        self.kind = kind
        self.rows = rows
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class MicroBatcher:
    """Coalesce concurrent requests into batches for a batched handler.

    Parameters
    ----------
    handler:
        ``handler(kind, X)`` — called on the worker thread with one
        stacked ``(n, q)`` float batch per request kind in a flush.
    max_batch_size:
        Row-count flush threshold.
    max_wait_ms:
        Deadline (milliseconds) from the oldest pending request's arrival
        to its flush.
    idle_flush_ms:
        Flush early once no new request has arrived for this long
        (milliseconds) — see the module docstring.
    on_request_done:
        Optional callback ``(latency_s, ok)`` per finished request.
    on_batch:
        Optional callback ``(n_rows)`` per handler call.

    Notes
    -----
    A request may carry several rows (a small client-side batch); its
    future resolves to the result rows for exactly those rows.  Rows from
    different requests never mix results — the handler's output is split
    back along the same offsets the inputs were stacked at.
    """

    def __init__(
        self,
        handler: BatchHandler,
        *,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        idle_flush_ms: float = 0.2,
        on_request_done: Optional[Callable[[float, bool], None]] = None,
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.handler = handler
        self.max_batch_size = check_positive_int(max_batch_size, "max_batch_size")
        self.max_wait_s = check_positive_float(max_wait_ms, "max_wait_ms") / 1e3
        self.idle_flush_s = (
            check_positive_float(idle_flush_ms, "idle_flush_ms") / 1e3
        )
        self._on_request_done = on_request_done
        self._on_batch = on_batch
        self._queue: "queue.Queue[_Request]" = queue.Queue()
        self._closed = threading.Event()
        self._drain_lock = make_lock("MicroBatcher._drain_lock")
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ intake

    def submit(self, kind: str, rows: Any) -> Future:
        """Enqueue ``rows`` (one sample ``(q,)`` or a block ``(m, q)``).

        Returns a future resolving to the handler's result rows for this
        request.  Raises ``RuntimeError`` after :meth:`close`.
        """
        if self._closed.is_set():
            raise RuntimeError("MicroBatcher is closed")
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"rows must be a sample (q,) or a non-empty block (m, q), "
                f"got shape {rows.shape}"
            )
        request = _Request(str(kind), rows)
        self._queue.put(request)
        if self._closed.is_set():
            # close() may have drained between our flag check and the
            # put; if the worker is already gone, nobody else will ever
            # see this request — flush it (and any peers) ourselves.
            self._drain_if_worker_dead()
        return request.future

    # ------------------------------------------------------------------ worker

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            pending = [first]
            n_rows = first.rows.shape[0]
            deadline = first.enqueued_at + self.max_wait_s
            # Coalesce until the size cap, the oldest request's deadline,
            # or an arrival pause (idle flush).  After close() waiting is
            # skipped entirely: drain whatever is queued immediately so
            # shutdown never waits out max_wait_ms.
            while n_rows < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                if self._closed.is_set():
                    remaining = 0.0
                try:
                    if remaining <= 0:
                        nxt = self._queue.get_nowait()
                    else:
                        nxt = self._queue.get(
                            timeout=min(remaining, self.idle_flush_s)
                        )
                except queue.Empty:
                    break
                pending.append(nxt)
                n_rows += nxt.rows.shape[0]
            self._flush(pending)

    def _flush(self, pending: Sequence[_Request]) -> None:
        by_kind: Dict[str, List[_Request]] = {}
        for request in pending:
            by_kind.setdefault(request.kind, []).append(request)
        for kind, group in by_kind.items():
            # Everything — stacking included — stays inside the guard: a
            # width-mismatched pair of requests must fail *those* futures,
            # not escape _flush and kill the worker (stranding every
            # pending and future request).
            try:
                batch = (
                    group[0].rows if len(group) == 1
                    else np.vstack([r.rows for r in group])
                )
                if self._on_batch is not None:
                    self._on_batch(batch.shape[0])
                result = np.asarray(self.handler(kind, batch))
                if result.shape[0] != batch.shape[0]:
                    raise RuntimeError(
                        f"handler returned {result.shape[0]} result rows "
                        f"for a {batch.shape[0]}-row batch"
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                self._resolve(group, None, exc)
            else:
                self._resolve(group, result, None)

    def _resolve(
        self,
        group: Sequence[_Request],
        result: Optional[np.ndarray],
        error: Optional[BaseException],
    ) -> None:
        now = time.perf_counter()
        offset = 0
        for request in group:
            stop = offset + request.rows.shape[0]
            if error is None:
                request.future.set_result(result[offset:stop])
            else:
                request.future.set_exception(error)
            offset = stop
            if self._on_request_done is not None:
                self._on_request_done(now - request.enqueued_at, error is None)

    # --------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop intake, flush everything still pending, join the worker."""
        self._closed.set()
        self._worker.join(timeout=timeout)
        # A submit racing the shutdown flag can slip a request into the
        # queue after the worker's final empty check; flush those inline
        # so every accepted request resolves.  Only once the worker has
        # actually exited, though — a worker that outlived the join
        # timeout still owns the queue, and flushing alongside it would
        # run the handler on two threads at once.
        self._drain_if_worker_dead()

    def _drain_if_worker_dead(self) -> None:
        if self._worker.is_alive():
            return  # the live worker drains the queue before exiting
        with self._drain_lock:
            leftovers: List[_Request] = []
            while True:
                try:
                    leftovers.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if leftovers:
                self._flush(leftovers)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(max_batch_size={self.max_batch_size}, "
            f"max_wait_ms={self.max_wait_s * 1e3:g})"
        )
