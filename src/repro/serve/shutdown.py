"""Graceful-shutdown registry + signal handlers for serving processes.

Long-running serving entry points (``repro serve``, ``repro chaos``, or
any embedding process) register their closeable resources here; a single
:func:`install_signal_handlers` call arms SIGTERM/SIGINT so that on
termination every registered server drains its batcher, fails or
finishes in-flight requests, reaps worker processes, and releases shared
memory **before** the interpreter dies — instead of relying on process
teardown (which leaks shared-memory segments and orphans fleet workers).

The registry is deliberately tiny: anything with a ``close()`` method can
register.  :class:`~repro.serve.server.ModelServer` and
:class:`~repro.serve.fleet.server.FleetServer` register themselves on
construction and unregister on close, so user code only has to call
:func:`install_signal_handlers` (the CLI does it for you).

Flight dumps ride the same path: a server built with an
:class:`~repro.obs.Observability` bundle writes its ``shutdown`` flight
dump inside its own first ``close()`` — the registry never dumps
anything itself, so a signal-driven sweep leaves exactly one forensic
artifact per server, same as a clean exit.
"""

from __future__ import annotations

import signal
import threading
import types
from typing import Any, Callable, List, Optional

_registry_lock = threading.Lock()
_registry: List[Any] = []
_installed = False
_previous: dict = {}


def register(server: Any) -> None:
    """Track ``server`` (anything with ``close()``) for shutdown."""
    with _registry_lock:
        if server not in _registry:
            _registry.append(server)


def unregister(server: Any) -> None:
    """Stop tracking ``server`` (idempotent)."""
    with _registry_lock:
        try:
            _registry.remove(server)
        except ValueError:
            pass


def registered() -> List[Any]:
    """A snapshot of the currently tracked servers (newest last)."""
    with _registry_lock:
        return list(_registry)


def close_all() -> int:
    """Close every registered server, newest first; returns the count.

    Close order is reversed registration order so dependents (a fleet
    built on an artifact, an adapter driving a server) come down before
    what they depend on.  Exceptions from one ``close()`` don't stop the
    rest.
    """
    with _registry_lock:
        servers = list(reversed(_registry))
    closed = 0
    for server in servers:
        try:
            server.close()
            closed += 1
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        unregister(server)
    return closed


def install_signal_handlers(
    signals: tuple = (signal.SIGTERM, signal.SIGINT),
    on_shutdown: Optional[Callable[[int], None]] = None,
) -> bool:
    """Arm graceful shutdown on ``signals`` (main thread only).

    The handler closes every registered server via :func:`close_all`,
    invokes ``on_shutdown(signum)`` if given, restores the previous
    handlers, and re-raises the signal so the process exits with the
    conventional status.  Returns False (and installs nothing) when not
    called from the main thread — signal handlers are a main-thread-only
    facility in CPython.
    """
    global _installed
    if threading.current_thread() is not threading.main_thread():
        return False

    def _handler(signum: int, frame: Optional[types.FrameType]) -> None:
        # Disarm first: teardown holds non-reentrant server locks on this
        # (main) thread, so a repeated SIGINT/SIGTERM re-entering the
        # handler mid-close would deadlock on them.  SIG_IGN until the
        # teardown finishes; uninstall below restores the real handlers.
        for sig in signals:
            try:
                signal.signal(sig, signal.SIG_IGN)
            except (ValueError, OSError):  # pragma: no cover
                pass
        close_all()
        if on_shutdown is not None:
            on_shutdown(signum)
        uninstall_signal_handlers()
        signal.raise_signal(signum)

    for sig in signals:
        _previous[sig] = signal.signal(sig, _handler)
    _installed = True
    return True


def uninstall_signal_handlers() -> None:
    """Restore the handlers that were active before installation."""
    global _installed
    for sig, handler in list(_previous.items()):
        try:
            signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
        _previous.pop(sig, None)
    _installed = False


def handlers_installed() -> bool:
    """Whether :func:`install_signal_handlers` is currently armed."""
    return _installed
