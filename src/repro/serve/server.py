"""The model server: a versioned model pool behind a micro-batcher.

:class:`ModelServer` fronts any fitted model that exposes ``predict`` /
``decision_scores`` (every library classifier, ``LoadedHDCModel`` archives
and :class:`~repro.deploy.quantized.QuantizedHDCModel` deploy artifacts
alike) with:

- **micro-batched inference** — concurrent :meth:`~ModelServer.predict` /
  :meth:`~ModelServer.decision_scores` calls coalesce into bounded-latency
  batches (see :mod:`repro.serve.batcher`), so the fused, chunked kernels
  see real batches instead of single rows;
- **versioned hot-swap** — :meth:`~ModelServer.deploy` loads the next
  model (an object or a :mod:`repro.persistence` archive path), warms it
  with a representative batch, then atomically flips the active pointer.
  In-flight batches finish against the version they started on and each
  retired version can be awaited until drained, so a swap drops zero
  requests;
- **request-level metrics** — throughput, latency percentiles, the
  batch-size histogram, the swap count and (for deploy artifacts and
  loaded archives, whose pipelines split cleanly) the cumulative
  encode-vs-score stage timings via :meth:`~ModelServer.stats`.

The hot-swap protocol in detail (the invariant later replication work
builds on): ``deploy`` prepares v(N+1) entirely off the request path
(load, validate, warm), takes the swap lock, publishes v(N+1) as the
active version, and releases the lock.  The batch handler reads the
active version exactly once per batch, so every request is scored by one
coherent model; after the flip, v(N)'s in-flight counter drains to zero
and :meth:`~ModelServer.wait_drained` returns — only then may v(N)'s
state be mutated or released.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.analysis.annotations import guarded_by, make_lock
from repro.obs.ids import wall_now
from repro.obs.trace import TraceContext, span_record
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServerMetrics
from repro.serve.staging import staged_scores
from repro.utils.validation import check_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Request kinds the batch handler understands.
_KIND_PREDICT = "predict"
_KIND_SCORES = "scores"


# ``model`` is deliberately NOT a guarded field: writes happen under the
# lock (release_model), but reads are protected by the enter/drain
# protocol (_try_enter registers the reader before the pointer can be
# released), which the linter cannot express — the threaded swap stress
# suite pins it instead.
@guarded_by("_lock", "_in_flight", aliases=("_drained",))
class ModelVersion:
    """One entry of the server's version pool.

    Tracks the model object, where it came from, when it went live, and
    how many batches are currently executing against it (the drain
    counter behind the zero-dropped-requests swap guarantee).
    """

    def __init__(
        self,
        version: int,
        model: Any,
        source: Optional[str],
    ) -> None:
        self.version = int(version)
        self.model = model
        self.source = source
        self.deployed_unix = time.time()
        self.retired_unix: Optional[float] = None
        self._in_flight = 0
        self._lock = make_lock("ModelVersion._lock")
        self._drained = threading.Condition(self._lock)

    # -------------------------------------------------------- drain tracking

    def _try_enter(self) -> bool:
        """Register a batch against this version — unless it was already
        drained *and released*.

        The check and the increment share the version lock with
        :meth:`release_model`'s drain-check-and-release, so a releaser can
        never observe ``in_flight == 0`` while a handler sits between
        reading the active pointer and registering itself.
        """
        with self._lock:
            if self.model is None:
                return False
            self._in_flight += 1
            return True

    def _exit(self) -> None:
        with self._lock:
            self._in_flight -= 1
            if self._in_flight <= 0:
                self._drained.notify_all()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until no batch is executing against this version."""
        with self._lock:
            return self._drained.wait_for(
                lambda: self._in_flight <= 0, timeout=timeout
            )

    def release_model(self, timeout: Optional[float] = None) -> bool:
        """Drop the model reference once drained; atomic with the drain check.

        Returns ``False`` (and leaves the reference in place) when the
        version did not drain within ``timeout`` — leaking a retired model
        for a while is recoverable, serving a ``None`` model is not.
        """
        with self._lock:
            if not self._drained.wait_for(
                lambda: self._in_flight <= 0, timeout=timeout
            ):
                return False
            self.model = None
            return True

    def as_record(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "source": self.source,
            "model": type(self.model).__name__ if self.model is not None
            else None,
            "deployed_unix": self.deployed_unix,
            "retired_unix": self.retired_unix,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "retired" if self.retired_unix is not None else "active"
        return f"ModelVersion(v{self.version}, {state})"


def _check_servable(model: Any) -> None:
    for attr in ("predict", "decision_scores"):
        if not callable(getattr(model, attr, None)):
            raise TypeError(
                f"model {type(model).__name__} is not servable: "
                f"missing {attr}()"
            )


def _model_n_features(model: Any) -> Optional[int]:
    value = getattr(model, "n_features_", None)
    return int(value) if value is not None else None


@guarded_by("_swap_lock", "_versions")
class ModelServer:
    """Serve a fitted model behind micro-batching with atomic hot-swap.

    Parameters
    ----------
    model:
        The initial fitted model, or a :mod:`repro.persistence` archive
        path (``str`` / ``Path``) to load it from.
    max_batch_size / max_wait_ms:
        Micro-batching knobs (see :class:`~repro.serve.batcher.MicroBatcher`).
    metrics_window:
        Latency-percentile window (see
        :class:`~repro.serve.metrics.ServerMetrics`).
    retain_retired:
        Keep retired versions' model objects alive.  Off by default —
        retiring releases the reference once the adapter (or any caller
        holding it) is done; the version *record* is always kept.
    obs:
        Optional :class:`repro.obs.Observability` bundle.  Metrics
        publish into its registry, sampled requests get server-side
        spans (``serve`` / ``batch`` / ``encode`` / ``score``), and
        :meth:`close` dumps its flight recorder with reason
        ``"shutdown"``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DistHDClassifier
    >>> from repro.serve import ModelServer
    >>> rng = np.random.default_rng(0)
    >>> X = rng.normal(size=(64, 6)); y = np.arange(64) % 2
    >>> clf = DistHDClassifier(dim=64, iterations=2, seed=0).fit(X, y)
    >>> with ModelServer(clf, max_wait_ms=1.0) as server:
    ...     preds = server.predict(X[:4])
    >>> preds.shape
    (4,)
    """

    # ``_active`` is an atomic pointer read by design (one coherent
    # version per batch — see _handle); only the version *pool* needs the
    # swap lock.

    def __init__(
        self,
        model: Any,
        *,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        idle_flush_ms: float = 0.2,
        metrics_window: int = 8192,
        retain_retired: bool = False,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.obs = obs
        self.metrics = ServerMetrics(window=metrics_window, obs=obs)
        self.retain_retired = bool(retain_retired)
        self._swap_lock = make_lock("ModelServer._swap_lock")
        self._versions: List[ModelVersion] = []
        self._active: Optional[ModelVersion] = None
        self._warm_rows: Optional[np.ndarray] = None
        self._closed = False
        self._batcher = MicroBatcher(
            self._handle,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            idle_flush_ms=idle_flush_ms,
            on_group_done=self._on_group_done,
            on_batch=self.metrics.record_batch,
            tracer=obs.tracer if obs is not None else None,
            pass_context=obs is not None,
        )
        try:
            self.deploy(model, warm=False)
        except BaseException:
            self._batcher.close()
            raise
        from repro.serve import shutdown as shutdown_registry

        shutdown_registry.register(self)

    # ---------------------------------------------------------------- handler

    def _staged_scores(
        self,
        model: Any,
        X: np.ndarray,
        ctx: Optional[TraceContext] = None,
    ) -> Optional[np.ndarray]:
        """Score ``X`` with the encode and score stages timed separately.

        The split itself lives in :func:`repro.serve.staging.staged_scores`
        (shared with the fleet worker); this wrapper feeds the timings to
        :meth:`~repro.serve.metrics.ServerMetrics.record_stage_times` — so
        the stats endpoint shows how much of the serving budget goes to
        encoding versus scoring — and, for a sampled batch, emits
        ``encode`` / ``score`` spans parented to the batch span.
        Returns ``None`` when the model has no clean split and the
        handler falls back to ``model.decision_scores``.
        """
        result = staged_scores(model, X)
        if result is None:
            return None
        scores, encode_s, score_s = result
        self.metrics.record_stage_times(encode_s, score_s)
        if ctx is not None and ctx.sampled and self.obs is not None:
            now = wall_now()
            self.obs.tracer.ingest([
                span_record("encode", "server", ctx,
                            now - encode_s - score_s, encode_s),
                span_record("score", "server", ctx, now - score_s, score_s),
            ])
        return scores

    def _handle(
        self,
        kind: str,
        X: np.ndarray,
        ctx: Optional[TraceContext] = None,
    ) -> np.ndarray:
        # One coherent version per batch.  A deploy can flip the active
        # pointer (and drain + release the old version) between our read
        # and our registration; _try_enter refuses a released version, in
        # which case we re-read — the fresh pointer is always enterable.
        while True:
            active = self._active
            if active._try_enter():
                break
        try:
            if kind not in (_KIND_PREDICT, _KIND_SCORES):
                raise ValueError(f"unknown request kind {kind!r}")
            scores = self._staged_scores(active.model, X, ctx)
            if scores is None:
                if kind == _KIND_PREDICT:
                    return np.asarray(active.model.predict(X))
                return np.asarray(active.model.decision_scores(X))
            if kind == _KIND_PREDICT:
                return np.asarray(
                    active.model.classes_[np.argmax(scores, axis=1)]
                )
            return scores
        finally:
            active._exit()

    def _on_group_done(self, latencies_s: List[float], ok: bool) -> None:
        self.metrics.record_requests(latencies_s)
        if not ok:
            for _ in latencies_s:
                self.metrics.record_error()

    # ----------------------------------------------------------------- intake

    def _prepare(self, X: Any) -> np.ndarray:
        """Validate a request up front so one bad request cannot poison a
        batch shared with well-formed ones."""
        if self._closed:
            raise RuntimeError("ModelServer is closed")
        X = np.asarray(X, dtype=np.float64)
        one_dim = X.ndim == 1
        X = check_matrix(X.reshape(1, -1) if one_dim else X, "X")
        expected = _model_n_features(self._active.model)
        if expected is not None and X.shape[1] != expected:
            raise ValueError(
                f"served model expects {expected} features, got {X.shape[1]}"
            )
        if self._warm_rows is None:
            self._warm_rows = X[:1].copy()
        return X

    def submit_predict(
        self, X: Any, ctx: Optional[TraceContext] = None
    ) -> Future:
        """Micro-batched ``predict``; resolves to the label rows for ``X``."""
        return self._batcher.submit(_KIND_PREDICT, self._prepare(X), ctx)

    def submit_decision_scores(
        self, X: Any, ctx: Optional[TraceContext] = None
    ) -> Future:
        """Micro-batched ``decision_scores``; resolves to ``(n, k)`` scores."""
        return self._batcher.submit(_KIND_SCORES, self._prepare(X), ctx)

    def predict(self, X: Any, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous micro-batched prediction (submit + wait)."""
        return self.submit_predict(X).result(timeout=timeout)

    def decision_scores(
        self,
        X: Any,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous micro-batched per-class scores (submit + wait)."""
        return self.submit_decision_scores(X).result(timeout=timeout)

    # --------------------------------------------------------------- hot-swap

    def deploy(
        self,
        model: Any,
        *,
        warm: bool = True,
        source: Optional[str] = None,
    ) -> ModelVersion:
        """Publish ``model`` (object or archive path) as the next version.

        Load + validation + warm-up all happen before the flip, off the
        request path; the flip itself is one pointer swap under the swap
        lock.  Returns the new active :class:`ModelVersion`; the previous
        version keeps serving its in-flight batches until drained (see
        :meth:`wait_drained`).
        """
        if isinstance(model, (str, Path)):
            from repro.persistence import load_model as _load

            source = source or str(model)
            model = _load(model)
        _check_servable(model)
        incoming = _model_n_features(model)

        def check_compatible(previous: Optional[ModelVersion]) -> None:
            if previous is None:
                return
            expected = _model_n_features(previous.model)
            if (
                expected is not None
                and incoming is not None
                and expected != incoming
            ):
                raise ValueError(
                    f"cannot hot-swap: active version expects {expected} "
                    f"features, incoming model has {incoming}"
                )

        # Advisory pre-check so an incompatible deploy fails with the
        # guarded message instead of a shape error from the warm-up call;
        # the authoritative check re-runs under the swap lock.
        check_compatible(self._active)
        if warm and self._warm_rows is not None:
            # Populate lazy state (norm caches, encoder buffers) before
            # the model sees traffic.
            model.decision_scores(self._warm_rows)
        # Previous-read, compatibility check and flip are one atomic
        # step: with them separated, two concurrent deploys could both
        # capture the same previous version, double-retire it, and leave
        # the losing intermediate version unretired (and unreleased).
        with self._swap_lock:
            previous = self._active
            check_compatible(previous)
            version = ModelVersion(
                len(self._versions) + 1, model, source
            )
            self._versions.append(version)
            self._active = version
        if previous is not None:
            previous.retired_unix = time.time()
            self.metrics.record_swap()
            if not self.retain_retired:
                # Release the model reference once retired *and* drained
                # (atomically — see ModelVersion.release_model); callers
                # that need the object longer hold their own ref.  On
                # timeout the reference stays put: leaking a retired
                # model briefly beats serving a None one.
                previous.release_model(timeout=30.0)
        return version

    @property
    def active_version(self) -> ModelVersion:
        return self._active

    @property
    def model(self) -> Any:
        """The currently active model object."""
        return self._active.model

    def wait_drained(
        self, version: ModelVersion, timeout: Optional[float] = None
    ) -> bool:
        """Block until ``version`` has no in-flight batches."""
        return version.wait_drained(timeout=timeout)

    # ------------------------------------------------------------------ stats

    def stats(self) -> Dict[str, object]:
        """The stats-endpoint snapshot: metrics + version-pool state."""
        snapshot = self.metrics.snapshot()
        snapshot["active_version"] = self._active.version
        # Snapshot the pool under the swap lock: iterating the live list
        # while a concurrent deploy appends is a torn read (the first
        # unguarded access `repro lint` flagged on this tree).
        with self._swap_lock:
            versions = tuple(self._versions)
        snapshot["versions"] = [v.as_record() for v in versions]
        return snapshot

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop intake, flush pending requests, release the worker.

        Idempotent, and registered with :mod:`repro.serve.shutdown` so a
        SIGTERM/SIGINT drains the batcher before the process exits.
        When an obs bundle with a ``flight_dir`` is attached, the first
        close dumps the flight recorder (reason ``"shutdown"``)."""
        first_close = not self._closed
        self._closed = True
        self._batcher.close()
        from repro.serve import shutdown as shutdown_registry

        shutdown_registry.unregister(self)
        if first_close and self.obs is not None:
            self.obs.dump_flight("shutdown")

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelServer(v{self._active.version}, "
            f"model={type(self._active.model).__name__}, "
            f"n_requests={self.metrics.n_requests})"
        )
