"""Serving subsystem: micro-batched inference, hot-swap, online adaptation.

The request-path counterpart of the training engine.  A
:class:`~repro.serve.server.ModelServer` fronts any fitted model (or a
persisted archive) behind a :class:`~repro.serve.batcher.MicroBatcher`
that coalesces concurrent requests into bounded-latency batches, keeps a
versioned model pool with atomic hot-swap, and reports request-level
metrics.  An :class:`~repro.serve.adapter.OnlineAdapter` layers drift
detection over labeled feedback and promotes ``partial_fit``-adapted,
re-quantized versions in the background.

Quick start::

    from repro import DistHDClassifier
    from repro.serve import ModelServer, OnlineAdapter

    server = ModelServer(fitted_model, max_batch_size=64, max_wait_ms=2.0)
    labels = server.predict(rows)          # micro-batched under the hood
    server.deploy("model-v2.npz")          # atomic hot-swap from disk
    print(server.stats())                  # throughput, p50/p95/p99, swaps
    server.close()

or, via the facade, ``repro.api.serve_model(...)`` and the ``repro
serve`` CLI subcommand.  See ``docs/serving.md`` for the architecture.

For fault-tolerant multi-process serving — N supervised worker processes
mapping one shared-memory artifact behind admission control, with
heartbeat watchdog, supervised restart and a crash-loop circuit breaker —
see :mod:`repro.serve.fleet` (:class:`~repro.serve.fleet.server.
FleetServer`), the chaos harness in :mod:`repro.serve.chaos`, and the
graceful-shutdown registry in :mod:`repro.serve.shutdown`.
"""

from repro.serve.adapter import DriftDetector, DriftReport, OnlineAdapter
from repro.serve.batcher import MicroBatcher
from repro.serve.fleet import FleetServer, Overloaded
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.metrics import ServerMetrics
from repro.serve.server import ModelServer, ModelVersion

__all__ = [
    "DriftDetector",
    "DriftReport",
    "FleetServer",
    "LoadReport",
    "MicroBatcher",
    "ModelServer",
    "ModelVersion",
    "OnlineAdapter",
    "Overloaded",
    "ServerMetrics",
    "run_load",
]
