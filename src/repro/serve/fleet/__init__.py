"""Fault-tolerant multi-process serving fleet.

Public surface:

- :class:`~repro.serve.fleet.server.FleetServer` — supervisor +
  dispatcher + watchdog over N worker processes sharing one
  zero-copy artifact;
- :class:`~repro.serve.fleet.shm.SharedArtifact` — the shared-memory
  publication of a quantized deploy model;
- the typed failure surface (:class:`Overloaded`, :class:`WorkerCrashed`,
  ...) from :mod:`repro.serve.fleet.errors`.
"""

from repro.serve.fleet.errors import (
    DeadlineExceeded,
    FleetClosed,
    FleetError,
    Overloaded,
    RequestFailed,
    WorkerCrashed,
)
from repro.serve.fleet.server import FleetServer, as_quantized_artifact
from repro.serve.fleet.shm import EXIT_CORRUPT, SharedArtifact
from repro.serve.fleet.worker import resolve_worker_count

__all__ = [
    "FleetServer",
    "SharedArtifact",
    "EXIT_CORRUPT",
    "FleetError",
    "FleetClosed",
    "Overloaded",
    "DeadlineExceeded",
    "WorkerCrashed",
    "RequestFailed",
    "as_quantized_artifact",
    "resolve_worker_count",
]
