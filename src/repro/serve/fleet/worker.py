"""Fleet worker process: map the shared artifact, serve, heartbeat.

One worker is one OS process running :func:`fleet_worker_main`.  It maps
the published :class:`~repro.serve.fleet.shm.SharedArtifact` zero-copy,
rebuilds the deploy model over views into the segment, and then loops:
stamp a heartbeat, pull one message off its bounded request queue, act.

The protocol is deliberately tiny (plain tuples over one ``mp.Queue`` in
and one pipe out, per worker — a SIGKILLed worker can only corrupt *its
own* channels, which the supervisor discards wholesale on restart):

- ``("req", rid, kind, rows, deadline, enqueued, trace)`` — score
  ``rows`` (``kind`` is ``"predict"`` or ``"scores"``), unless
  ``deadline`` (unix seconds) already passed, in which case the worker
  answers ``("res", rid, "deadline", None, None)`` without touching the
  model.  ``trace`` is an optional
  :class:`~repro.obs.trace.TraceContext` tuple riding the request;
- ``("res", rid, status, payload, meta)`` — the reply.  ``meta`` is
  ``None`` or a dict carrying the worker-side per-stage timing split
  (``encode_s`` / ``score_s``, when the model's pipeline splits
  cleanly — see :mod:`repro.serve.staging`) and, for sampled traces,
  the worker's finished span dicts under ``"spans"`` for the
  supervisor's tracer to ingest;
- ``("reload", epoch, shm_name)`` — fleet hot-swap: attach the new
  segment, rebuild, ack ``("reloaded", ...)``.  The old mapping is kept
  (not closed) until process exit: dropping live ``np.frombuffer`` views
  safely is not worth the bounded few-KB leak per swap;
- ``("chaos", directive)`` — fault injection (see
  :mod:`repro.serve.chaos`): hang without heartbeats, exit with a given
  code, or add per-request latency;
- ``("stop",)`` — clean exit.

Every ``crc_check_every`` loop ticks the worker re-verifies the segment
CRC; on mismatch it reports ``("corrupt", ...)`` and exits with
:data:`~repro.serve.fleet.shm.EXIT_CORRUPT` so the supervisor repairs the
segment from its pristine copy before restarting the worker.  When the
supervisor passes a ``flight_dir`` in the worker config, the worker
keeps its own :class:`~repro.obs.recorder.FlightRecorder` and dumps it
(reason ``"corrupt"``) before a CRC-corruption exit — the one death the
supervisor cannot reconstruct from its own side.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.recorder import FlightRecorder
from repro.obs.trace import TraceContext, span_record
from repro.serve.fleet.shm import EXIT_CORRUPT, SharedArtifact
from repro.serve.staging import staged_scores

#: Largest single sleep slice while idling/delaying — heartbeats must keep
#: flowing through any legitimate wait so the watchdog only fires on real
#: hangs.
_SLICE_S = 0.02


def _beat(heartbeat: Any, index: int) -> None:
    heartbeat[index] = time.time()


def _sleep_with_beats(seconds: float, heartbeat: Any, index: int) -> None:
    deadline = time.perf_counter() + seconds
    while True:
        _beat(heartbeat, index)
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(remaining, _SLICE_S))


def _score_request(
    model: Any, kind: str, rows: np.ndarray
) -> Tuple[np.ndarray, Optional[float], Optional[float]]:
    """Serve one request, splitting encode/score stages when the model's
    pipeline allows it (same split :class:`~repro.serve.server.ModelServer`
    records single-process).  Returns ``(result, encode_s, score_s)`` with
    ``None`` timings when no clean split exists."""
    staged = staged_scores(model, rows)
    if staged is not None:
        scores, encode_s, score_s = staged
        if kind == "predict":
            return (
                np.asarray(model.classes_[np.argmax(scores, axis=1)]),
                encode_s, score_s,
            )
        return scores, encode_s, score_s
    if kind == "predict":
        return np.asarray(model.predict(rows)), None, None
    return np.asarray(model.decision_scores(rows)), None, None


def _request_meta(
    trace: Optional[Tuple[str, Optional[str], bool]],
    index: int,
    kind: str,
    start_unix: float,
    total_s: float,
    encode_s: Optional[float],
    score_s: Optional[float],
    recorder: Optional[FlightRecorder],
) -> Optional[Dict[str, Any]]:
    """The response ``meta`` dict: stage timings always (when split),
    span dicts only for sampled traces."""
    meta: Dict[str, Any] = {}
    if encode_s is not None:
        meta["encode_s"] = float(encode_s)
        meta["score_s"] = float(score_s or 0.0)
    if trace is not None and trace[2]:
        ctx = TraceContext(*trace)
        worker_span = span_record(
            "worker", "worker", ctx, start_unix, total_s,
            attrs={"index": index, "kind": kind},
        )
        child_ctx = TraceContext(ctx.trace_id, worker_span["span_id"], True)
        spans = [worker_span]
        if encode_s is not None:
            spans.append(span_record(
                "encode", "worker", child_ctx, start_unix, encode_s,
            ))
            spans.append(span_record(
                "score", "worker", child_ctx, start_unix + encode_s,
                float(score_s or 0.0),
            ))
        else:
            spans.append(span_record(
                "score", "worker", child_ctx, start_unix, total_s,
            ))
        meta["spans"] = spans
        if recorder is not None:
            for span in spans:
                recorder.record_span(span)
    return meta or None


def fleet_worker_main(
    index: int,
    generation: int,
    shm_name: str,
    requests: Any,
    responses: Connection,
    heartbeat: Any,
    config: Dict[str, Any],
) -> None:
    """Entry point of one fleet worker process (runs until stopped)."""
    heartbeat_interval_s = float(config.get("heartbeat_interval_s", 0.05))
    crc_check_every = int(config.get("crc_check_every", 64))
    service_floor_s = float(config.get("service_floor_s", 0.0))
    flight_dir = config.get("flight_dir")
    recorder: Optional[FlightRecorder] = (
        FlightRecorder(f"worker-{index}") if flight_dir else None
    )
    chaos_delay_s = 0.0
    artifacts: List[SharedArtifact] = []

    def _dump_corrupt(epoch: int) -> None:
        if recorder is None:
            return
        recorder.record_event("crc-corrupt", f"epoch {epoch}")
        try:
            recorder.dump(flight_dir, "corrupt")
        except OSError:
            pass  # crash path: the exit code still tells the supervisor

    artifact = SharedArtifact.attach(shm_name)
    if not artifact.verify():
        responses.send(("corrupt", index, generation, artifact.epoch))
        _dump_corrupt(artifact.epoch)
        os._exit(EXIT_CORRUPT)
    artifacts.append(artifact)
    model = artifact.rebuild_model()
    _beat(heartbeat, index)
    responses.send(("ready", index, generation, artifact.epoch))

    ticks = 0
    while True:
        _beat(heartbeat, index)
        ticks += 1
        if crc_check_every and ticks % crc_check_every == 0:
            if not artifact.verify():
                responses.send(("corrupt", index, generation, artifact.epoch))
                _dump_corrupt(artifact.epoch)
                os._exit(EXIT_CORRUPT)
        try:
            message = requests.get(timeout=heartbeat_interval_s)
        except queue_mod.Empty:
            continue
        tag = message[0]

        if tag == "req":
            _, rid, kind, rows, deadline, _enqueued, trace = message
            if deadline is not None and time.time() > deadline:
                responses.send(("res", rid, "deadline", None, None))
                continue
            delay = service_floor_s + chaos_delay_s
            if delay > 0:
                _sleep_with_beats(delay, heartbeat, index)
            start_unix = time.time()
            start_perf = time.perf_counter()
            try:
                result, encode_s, score_s = _score_request(model, kind, rows)
            except Exception as exc:  # noqa: BLE001 - reported per request
                responses.send(("res", rid, "error", repr(exc), None))
            else:
                meta = _request_meta(
                    trace, index, kind, start_unix,
                    time.perf_counter() - start_perf,
                    encode_s, score_s, recorder,
                )
                responses.send(("res", rid, "ok", result, meta))

        elif tag == "reload":
            _, epoch, new_name = message
            try:
                incoming = SharedArtifact.attach(new_name)
                if not incoming.verify():
                    raise RuntimeError(
                        f"epoch {epoch} segment failed CRC verification"
                    )
                model = incoming.rebuild_model()
            except Exception as exc:  # noqa: BLE001 - supervisor decides
                responses.send(
                    ("reload-failed", index, generation, int(epoch),
                     repr(exc))
                )
            else:
                artifact = incoming
                artifacts.append(incoming)
                responses.send(("reloaded", index, generation, int(epoch)))

        elif tag == "chaos":
            directive = message[1]
            chaos_kind = directive.get("kind")
            if chaos_kind == "hang":
                # Simulate a wedged worker: stop heartbeating entirely so
                # the watchdog's hang detection (not process liveness) has
                # to catch it.
                while True:
                    time.sleep(3600.0)
            elif chaos_kind == "crash":
                os._exit(int(directive.get("code", 1)))
            elif chaos_kind == "slow":
                chaos_delay_s = float(directive.get("delay_s", 0.0))
            elif chaos_kind == "clear":
                chaos_delay_s = 0.0

        elif tag == "stop":
            break

    responses.close()


def resolve_worker_count(n_workers: Optional[int]) -> int:
    """Fleet sizing through the engine's core-resolution idiom.

    ``None``/``-1`` sizes the fleet like
    :func:`repro.engine.executor.resolve_n_jobs` sizes a process pool —
    every visible core — so ``FleetServer(artifact, n_workers=-1)``
    matches ``ProcessExecutor`` semantics; explicit counts pass through
    (validated positive).
    """
    from repro.engine.executor import resolve_n_jobs

    if n_workers is None:
        n_workers = -1
    return int(resolve_n_jobs(n_workers))
