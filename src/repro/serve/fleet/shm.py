"""Zero-copy shared-memory publication of a deploy artifact.

A serving fleet runs N worker *processes* against one model image.  Pickling
the artifact into every worker would cost N copies of the class memory and
encoder parameters and make fleet-wide hot-swap an N-way re-serialization;
instead the supervisor publishes the fitted
:class:`~repro.deploy.quantized.QuantizedHDCModel` once into a
``multiprocessing.shared_memory`` segment and every worker maps it
zero-copy (``np.frombuffer`` views over the segment — for a bit-packed
artifact that is the flat ``uint64`` word image itself).

Segment layout (all offsets 8-aligned)::

    [u64 little-endian header length H]
    [H bytes of JSON header]
    [padding to 8]
    [arrays region: concatenated ndarray bodies]

The JSON header carries the model scalars (bits / packed / dim / encoder
kind + scalar parameters — the same field set
:mod:`repro.persistence` archives, reusing its encoder restore helper), an
array table of ``(name, dtype, shape, offset)`` entries, a monotonically
increasing **epoch** (the fleet hot-swap version), and a CRC32 over the
arrays region.  The CRC turns silent artifact corruption (the failure mode
:meth:`QuantizedHDCModel.inject_faults` models, or a stray writer) into a
detectable worker-side event: workers re-verify periodically and exit with
a distinct status so the supervisor can republish from its pristine copy.
"""

from __future__ import annotations

import json
import zlib
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.deploy.quantized import QuantizedHDCModel
from repro.noise.quantization import QuantizedTensor

#: Exit status a worker uses when the mapped artifact fails CRC
#: verification (distinct from crash codes so the supervisor can repair
#: the segment before restarting).
EXIT_CORRUPT = 64

_ALIGN = 8


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _encoder_meta_and_arrays(
    encoder: Any,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Split the persistence encoder payload into JSON scalars + arrays."""
    from repro.persistence import _encoder_payload

    payload = _encoder_payload(encoder)
    meta: Dict[str, Any] = {"kind": payload.pop("encoder_kind")}
    arrays: Dict[str, np.ndarray] = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, np.generic):
            meta[key] = value.item()
        else:
            meta[key] = value
    meta["dtype"] = np.dtype(
        getattr(encoder, "dtype", np.float64)
    ).str
    return meta, arrays


class SharedArtifact:
    """One published model image in a shared-memory segment.

    Build with :meth:`publish` (supervisor side, owns the segment and the
    pristine byte copy used for corruption repair) or :meth:`attach`
    (worker side, maps an existing segment read-mostly).  The worker calls
    :meth:`rebuild_model` for a :class:`QuantizedHDCModel` whose class
    memory and encoder parameters are ``np.frombuffer`` views straight
    into the segment — no copy, so N workers share one physical image.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        header: Dict[str, Any],
        *,
        owner: bool,
        pristine: Optional[bytes] = None,
    ) -> None:
        self._shm = shm
        self._header = header
        self._owner = owner
        self._pristine = pristine
        self._unlinked = False

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        return str(self._shm.name)

    @property
    def epoch(self) -> int:
        return int(self._header["epoch"])

    @property
    def nbytes(self) -> int:
        return int(self._header["total_bytes"])

    @property
    def header(self) -> Dict[str, Any]:
        return dict(self._header)

    # ------------------------------------------------------------ publishing

    @classmethod
    def publish(
        cls,
        artifact: QuantizedHDCModel,
        *,
        epoch: int,
        name: Optional[str] = None,
    ) -> "SharedArtifact":
        """Serialize ``artifact`` into a new shared-memory segment."""
        if not isinstance(artifact, QuantizedHDCModel):
            raise TypeError(
                f"SharedArtifact.publish needs a QuantizedHDCModel, got "
                f"{type(artifact).__name__}"
            )
        arrays: Dict[str, np.ndarray] = {}
        enc_meta, enc_arrays = _encoder_meta_and_arrays(artifact.encoder)
        arrays.update(enc_arrays)
        arrays["classes"] = np.ascontiguousarray(artifact.classes_)
        model_meta: Dict[str, Any] = {
            "bits": int(artifact.bits),
            "packed": bool(artifact.packed),
            "chunk_size": artifact.chunk_size,
            "dim": int(artifact._dim),
            "n_cells": int(artifact._n_cells),
            "n_features": int(artifact.n_features_),
            "base_itemsize": int(artifact._base_itemsize),
            "encoder": enc_meta,
        }
        if artifact.packed:
            words = artifact.packed_words
            assert words is not None
            arrays["words"] = np.ascontiguousarray(words)
            model_meta["packed_scale"] = float(artifact._packed_scale)
        else:
            quantized = artifact._quantized
            assert quantized is not None
            arrays["codes"] = np.ascontiguousarray(quantized.codes)
            model_meta["quant_scale"] = float(quantized.scale)
            model_meta["quant_shape"] = [int(d) for d in quantized.shape]

        table: List[Dict[str, Any]] = []
        offset = 0
        blobs: List[bytes] = []
        for array_name, array in arrays.items():
            body = array.tobytes()
            table.append(
                {
                    "name": array_name,
                    "dtype": array.dtype.str,
                    "shape": [int(d) for d in array.shape],
                    "offset": offset,
                    "nbytes": len(body),
                }
            )
            blobs.append(body)
            offset = _align(offset + len(body))
        region = bytearray(offset)
        for entry, body in zip(table, blobs):
            start = int(entry["offset"])
            region[start:start + len(body)] = body
        region_bytes = bytes(region)

        header: Dict[str, Any] = {
            "format": "repro-fleet-artifact-1",
            "epoch": int(epoch),
            "model": model_meta,
            "arrays": table,
            "crc32": zlib.crc32(region_bytes) & 0xFFFFFFFF,
        }
        # The header length feeds the arrays-region offset, which the
        # header itself records — iterate once to a fixed point (adding
        # the offset fields can only grow the JSON, never shrink it).
        arrays_start = 0
        for _ in range(4):
            header["arrays_start"] = arrays_start
            header["total_bytes"] = arrays_start + len(region_bytes)
            encoded = json.dumps(header, sort_keys=True).encode()
            need = _align(8 + len(encoded))
            if need == arrays_start:
                break
            arrays_start = need
        encoded = json.dumps(header, sort_keys=True).encode()

        total = int(header["total_bytes"])
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        shm.buf[0:8] = len(encoded).to_bytes(8, "little")
        shm.buf[8:8 + len(encoded)] = encoded
        start = int(header["arrays_start"])
        shm.buf[start:start + len(region_bytes)] = region_bytes
        return cls(shm, header, owner=True, pristine=region_bytes)

    @classmethod
    def attach(cls, name: str) -> "SharedArtifact":
        """Map an existing segment (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        # The attaching process must not register the segment with the
        # resource tracker: the supervisor owns the lifetime, and a
        # SIGKILLed worker would otherwise leave a stale registration the
        # tracker "cleans up" by unlinking the live segment under the
        # surviving workers.
        try:  # pragma: no cover - depends on private stdlib internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(shm, "_name", shm.name), "shared_memory"
            )
        except Exception:  # noqa: BLE001 - best effort on other platforms
            pass
        length = int.from_bytes(bytes(shm.buf[0:8]), "little")
        header = json.loads(bytes(shm.buf[8:8 + length]).decode())
        return cls(shm, header, owner=False)

    # -------------------------------------------------------------- integrity

    def _region(self) -> memoryview:
        start = int(self._header["arrays_start"])
        stop = int(self._header["total_bytes"])
        return self._shm.buf[start:stop]

    def verify(self) -> bool:
        """Recompute the arrays-region CRC32 against the published value."""
        region = self._region()
        try:
            return (zlib.crc32(region) & 0xFFFFFFFF) == int(
                self._header["crc32"]
            )
        finally:
            region.release()

    def restore_pristine(self) -> None:
        """Rewrite the arrays region from the publish-time byte copy.

        Supervisor-side corruption repair: after a worker exits with
        :data:`EXIT_CORRUPT`, the segment is restored in place so every
        worker (the restarted one and the survivors) maps clean data
        again without a new segment or an epoch flip.
        """
        if self._pristine is None:
            raise RuntimeError(
                "restore_pristine is only available on the publishing side"
            )
        region = self._region()
        try:
            region[:] = self._pristine
        finally:
            region.release()

    def array_view(self, name: str) -> np.ndarray:
        """A writable ndarray view of one published array (chaos/test use)."""
        for entry in self._header["arrays"]:
            if entry["name"] == name:
                dtype = np.dtype(str(entry["dtype"]))
                shape = tuple(int(d) for d in entry["shape"])
                start = int(self._header["arrays_start"]) + int(
                    entry["offset"]
                )
                count = int(np.prod(shape)) if shape else 1
                view = np.frombuffer(
                    self._shm.buf, dtype=dtype, count=count, offset=start
                )
                return view.reshape(shape)
        raise KeyError(f"no array {name!r} in segment {self.name}")

    # ------------------------------------------------------------ model build

    def rebuild_model(self) -> QuantizedHDCModel:
        """Reconstruct the artifact over zero-copy views of the segment.

        The returned model's class memory (packed words or quantized
        codes) and encoder parameter arrays alias the shared segment
        directly; only the tiny ``classes_`` label array is copied (it
        must outlive any future segment swap).  The model keeps a
        reference to this :class:`SharedArtifact` so the mapping cannot
        be closed out from under live views.
        """
        from repro.persistence import _restore_encoder

        meta = self._header["model"]
        enc_meta = dict(meta["encoder"])
        kind = str(enc_meta.pop("kind"))
        dtype = np.dtype(str(enc_meta.pop("dtype")))
        data: Dict[str, Any] = dict(enc_meta)
        for entry in self._header["arrays"]:
            entry_name = str(entry["name"])
            if entry_name.startswith("enc_"):
                data[entry_name] = self.array_view(entry_name)
        encoder = _restore_encoder(
            kind, data, int(meta["n_features"]), int(meta["dim"]), dtype
        )

        model = object.__new__(QuantizedHDCModel)
        model.classifier = None
        model.bits = int(meta["bits"])
        model.chunk_size = (
            int(meta["chunk_size"]) if meta["chunk_size"] is not None else None
        )
        model.packed = bool(meta["packed"])
        model.refresh_count = 0
        model.encoder = encoder
        model.classes_ = np.array(self.array_view("classes"))
        model.n_features_ = int(meta["n_features"])
        model._base_itemsize = int(meta["base_itemsize"])
        model._n_cells = int(meta["n_cells"])
        model._dim = int(meta["dim"])
        if model.packed:
            model._quantized = None
            model._packed_scale = float(meta["packed_scale"])
            model._packed_words = self.array_view("words")
        else:
            shape = tuple(int(d) for d in meta["quant_shape"])
            model._quantized = QuantizedTensor(
                self.array_view("codes"),
                int(meta["bits"]),
                float(meta["quant_scale"]),
                shape,
            )
            model._packed_scale = 0.0
            model._packed_words = None
        # Keep the mapping alive for as long as the model's views are.
        model._shared_artifact = self  # type: ignore[attr-defined]
        return model

    # --------------------------------------------------------------- lifetime

    def close(self) -> None:
        """Unmap the segment in this process (best effort: a live view —
        e.g. a chaos harness still holding ``array_view`` — keeps the
        mapping; it falls with the process)."""
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (publisher side; idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        # Forked workers share the supervisor's resource tracker, so the
        # deliberate unregister in :meth:`attach` may have removed this
        # segment's (shared) tracker entry; re-register before unlinking
        # so the tracker-side unregister that unlink performs always
        # finds one (a duplicate register is a set-add no-op).
        try:  # pragma: no cover - depends on private stdlib internals
            from multiprocessing import resource_tracker

            resource_tracker.register(
                getattr(self._shm, "_name", self._shm.name), "shared_memory"
            )
        except Exception:  # noqa: BLE001 - best effort on other platforms
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedArtifact({self.name!r}, epoch={self.epoch}, "
            f"{self.nbytes} bytes)"
        )
