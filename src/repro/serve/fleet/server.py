"""The fault-tolerant serving fleet: supervisor + dispatcher + watchdog.

:class:`FleetServer` runs N worker *processes* (one OS process each, the
engine's :class:`~repro.engine.executor.ProcessExecutor` idiom applied to
the request path) against one
:class:`~repro.serve.fleet.shm.SharedArtifact` — the deploy model
published once into shared memory and mapped zero-copy by every worker.
The front end is a dispatcher with **per-worker bounded queues** and
**admission control**: a request is placed on the least-loaded running
worker's queue, and when every queue is full it is *shed* with an
explicit :class:`~repro.serve.fleet.errors.Overloaded` instead of
queueing unboundedly.  Each request carries a **deadline**; a worker that
dequeues an already-expired request answers without touching the model.

Robustness model (the supervision tree, see ``docs/serving.md``):

- a **watchdog** thread detects crashed workers (process liveness) and
  hung workers (heartbeat age — each worker stamps a lock-free shared
  timestamp every loop tick, so SIGKILL and wedged-in-C both surface);
  hung workers are SIGKILLed so the restart path is the single recovery
  story;
- dead workers are restarted with **exponential backoff**, and a
  **crash-loop circuit breaker** stops restarting a worker that died
  ``max_restarts`` times inside ``restart_window_s`` — the fleet degrades
  to the surviving workers instead of hot-looping forks;
- in-flight requests assigned to a dead worker are **retried** on a
  surviving worker (idempotent ``predict`` only, bounded by the request
  deadline) — the acceptance property the chaos harness drives: SIGKILL
  under load loses zero non-shed requests;
- a worker that detects artifact corruption (CRC mismatch) exits with a
  distinct status; the supervisor **repairs the segment in place** from
  its pristine publish-time copy and restarts the worker;
- :meth:`FleetServer.deploy` is an **all-or-nothing epoch flip**: the new
  artifact is published as epoch N+1, every running worker reloads and
  acks, and only when all acks arrive does the fleet flip its active
  epoch (stragglers that die mid-swap don't block — they restart onto
  whatever epoch is active).  On any failure the acked workers are rolled
  back to the last-good epoch and the new segment is discarded.

Every noteworthy event lands in the structured problem-event log on
:class:`~repro.serve.metrics.ServerMetrics`, so ``stats()`` is the one
operator surface for shed counts, retries, crashes, breaker state and
swap rollbacks.

Observability (``obs=`` — an :class:`repro.obs.Observability` bundle):
sampled requests carry their :class:`~repro.obs.trace.TraceContext` over
the worker queues, the dispatcher wraps each attempt in a ``dispatch``
span and ingests the worker's ``encode``/``score`` spans from the
response metadata, retries emit a ``retry`` span on the same trace, and
the flight recorder is dumped on worker death, breaker trips, and
close().  Workers additionally ship their per-stage timing split back in
the response ``meta`` so ``stats()["stages"]`` reports the same
encode/score breakdown the single-process server does.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import threading
import time
from concurrent.futures import Future
from multiprocessing.connection import Connection, wait as connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import guarded_by, make_lock
from repro.deploy.quantized import QuantizedHDCModel
from repro.obs.ids import wall_now
from repro.obs.trace import TraceContext, span_record
from repro.serve.fleet.errors import (
    DeadlineExceeded,
    FleetClosed,
    Overloaded,
    RequestFailed,
    WorkerCrashed,
)
from repro.serve.fleet.shm import EXIT_CORRUPT, SharedArtifact
from repro.serve.fleet.worker import fleet_worker_main, resolve_worker_count
from repro.serve.metrics import ServerMetrics
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs import Observability

#: Worker lifecycle states (``stats()["fleet"]["workers"][i]["state"]``).
STARTING = "starting"
RUNNING = "running"
BACKOFF = "backoff"
BROKEN = "broken"
STOPPED = "stopped"


def as_quantized_artifact(model: Any) -> QuantizedHDCModel:
    """Resolve ``model`` to the :class:`QuantizedHDCModel` a fleet serves.

    Accepts the artifact itself, a fitted
    :class:`~repro.deploy.quantized.QuantizedTrainer` (its ``deployed_``
    image), or a :mod:`repro.persistence` archive path that loads to
    either.
    """
    if isinstance(model, QuantizedHDCModel):
        return model
    deployed = getattr(model, "deployed_", None)
    if isinstance(deployed, QuantizedHDCModel):
        return deployed
    if isinstance(model, (str, Path)):
        from repro.persistence import load_model

        return as_quantized_artifact(load_model(model))
    raise TypeError(
        f"FleetServer needs a QuantizedHDCModel (or a QuantizedTrainer / "
        f"archive path holding one); got {type(model).__name__}"
    )


class _Pending:
    """One in-flight request: dispatch state the retry path needs."""

    __slots__ = (
        "rid", "kind", "rows", "deadline", "enqueued", "future", "worker",
        "attempts", "ctx", "span",
    )

    def __init__(
        self,
        kind: str,
        rows: np.ndarray,
        deadline: float,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        self.rid = -1
        self.kind = kind
        self.rows = rows
        self.deadline = deadline
        self.enqueued = time.time()
        self.future: Future = Future()
        self.worker: Optional[_WorkerHandle] = None
        self.attempts = 0
        self.ctx = ctx
        self.span: Optional[Any] = None  # live "dispatch" span, if sampled


class _WorkerHandle:
    """Supervisor-side record of one worker slot (mutated under the fleet
    lock).  The slot outlives individual processes: a restart bumps
    ``generation`` and replaces the process/queue/pipe wholesale, so a
    SIGKILL-corrupted channel can never be reused."""

    __slots__ = (
        "index", "generation", "process", "queue", "conn", "state", "epoch",
        "assigned", "restart_log", "restart_at", "started_at", "n_restarts",
        "last_exitcode", "ready_at",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.generation = 0
        self.process: Optional[Any] = None
        self.queue: Optional[Any] = None
        self.conn: Optional[Connection] = None
        self.state = BACKOFF
        self.epoch = 0
        self.assigned = 0
        self.restart_log: List[float] = []
        self.restart_at = 0.0
        self.started_at = 0.0
        self.n_restarts = -1  # the initial spawn is not a restart
        self.last_exitcode: Optional[int] = None
        self.ready_at: Optional[float] = None

    def as_record(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "state": self.state,
            "generation": self.generation,
            "pid": self.process.pid if self.process is not None else None,
            "epoch": self.epoch,
            "assigned": self.assigned,
            "restarts": max(self.n_restarts, 0),
            "breaker_open": self.state == BROKEN,
            "last_exitcode": self.last_exitcode,
        }


@guarded_by(
    "_lock",
    "_pending",
    "_next_rid",
    "_workers",
    "_swap_state",
    "_closed",
    aliases=("_state_cond",),
)
class FleetServer:
    """N supervised worker processes serving one shared-memory artifact.

    Parameters
    ----------
    model:
        A :class:`~repro.deploy.quantized.QuantizedHDCModel` (packed or
        not), a fitted ``QuantizedTrainer``, or an archive path holding
        one.
    n_workers:
        Worker processes (``-1``/``None`` → every visible core, the
        engine's ``resolve_n_jobs`` semantics).
    queue_depth:
        Bounded per-worker request queue length — the admission-control
        knob.  Total fleet capacity is ``n_workers * queue_depth``
        queued + in-flight requests; beyond it submits shed with
        :class:`Overloaded`.
    default_timeout_s:
        Request deadline when the caller does not pass one.
    heartbeat_interval_s / hang_timeout_s:
        Worker heartbeat cadence and the heartbeat age past which a live
        process counts as hung (and is SIGKILLed + restarted).
    restart_backoff_s / restart_backoff_max_s:
        Exponential restart backoff: death *k* within the window waits
        ``backoff * 2**(k-1)`` seconds, capped.
    max_restarts / restart_window_s:
        Crash-loop circuit breaker: ``max_restarts`` deaths inside
        ``restart_window_s`` mark the slot broken (no further restarts).
    retry_on_worker_loss:
        Retry a dead worker's in-flight ``predict`` requests on a
        survivor (idempotent; ``scores`` requests fail with
        :class:`WorkerCrashed` — callers own non-idempotent semantics).
    service_floor_s:
        Minimum per-request service time workers enforce (sleeping in
        heartbeat-preserving slices).  ``0`` serves at compute speed;
        benchmarks use a small floor to emulate downstream-bound request
        service when measuring queueing/scaling behaviour.
    start_method:
        ``multiprocessing`` start method (default ``fork`` where
        available — restart latency is a recovery-time budget item).
    obs:
        Optional :class:`repro.obs.Observability` bundle.  Enables trace
        propagation over the worker pipes (``ctx=`` on the submit
        methods), publishes fleet counters and per-worker gauges into
        the bundle's registry, forwards its ``flight_dir`` to the worker
        processes, and dumps the flight recorder on worker death,
        breaker trips, and :meth:`close`.
    """

    def __init__(
        self,
        model: Any,
        *,
        n_workers: Optional[int] = 2,
        queue_depth: int = 16,
        default_timeout_s: float = 5.0,
        heartbeat_interval_s: float = 0.05,
        hang_timeout_s: float = 2.0,
        start_timeout_s: float = 30.0,
        restart_backoff_s: float = 0.1,
        restart_backoff_max_s: float = 2.0,
        max_restarts: int = 3,
        restart_window_s: float = 5.0,
        max_retries: int = 2,
        retry_on_worker_loss: bool = True,
        service_floor_s: float = 0.0,
        crc_check_every: int = 64,
        start_method: Optional[str] = None,
        metrics_window: int = 8192,
        wait_ready: bool = True,
        obs: Optional["Observability"] = None,
    ) -> None:
        artifact = as_quantized_artifact(model)
        self.n_workers = resolve_worker_count(
            n_workers if n_workers is not None else 1
        )
        self.queue_depth = check_positive_int(queue_depth, "queue_depth")
        self.default_timeout_s = float(default_timeout_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.hang_timeout_s = float(hang_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self.restart_backoff_s = float(restart_backoff_s)
        self.restart_backoff_max_s = float(restart_backoff_max_s)
        self.max_restarts = check_positive_int(max_restarts, "max_restarts")
        self.restart_window_s = float(restart_window_s)
        self.max_retries = int(max_retries)
        self.retry_on_worker_loss = bool(retry_on_worker_loss)
        self.service_floor_s = float(service_floor_s)
        self.crc_check_every = int(crc_check_every)
        self.obs = obs
        self.metrics = ServerMetrics(window=metrics_window, obs=obs)

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = mp.get_context(start_method)
        self._heartbeat = self._ctx.Array(
            "d", self.n_workers, lock=False
        )
        self._lock = make_lock("FleetServer._lock")
        self._state_cond = threading.Condition(self._lock)
        self._pending: Dict[int, _Pending] = {}
        self._next_rid = 0
        self._workers: List[_WorkerHandle] = [
            _WorkerHandle(i) for i in range(self.n_workers)
        ]
        self._swap_state: Optional[Dict[str, Any]] = None
        self._closed = False
        self._closed_event = threading.Event()
        self._n_features = int(artifact.n_features_)
        self._epoch = 1
        self._artifact = SharedArtifact.publish(artifact, epoch=self._epoch)
        self._worker_config: Dict[str, Any] = {
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "crc_check_every": self.crc_check_every,
            "service_floor_s": self.service_floor_s,
            "flight_dir": (
                str(obs.flight_dir)
                if obs is not None and obs.flight_dir is not None
                else None
            ),
        }
        if obs is not None:
            self._register_fleet_gauges(obs)

        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-fleet-collector",
            daemon=True,
        )
        self._watchdog = threading.Thread(
            target=self._watch_loop, name="repro-fleet-watchdog", daemon=True,
        )
        try:
            for index in range(self.n_workers):
                self._start_worker(index)
            self._collector.start()
            self._watchdog.start()
            if wait_ready and not self.wait_all_running(
                timeout=self.start_timeout_s
            ):
                raise RuntimeError(
                    f"fleet failed to start: "
                    f"{self.worker_states()} after {self.start_timeout_s}s"
                )
            from repro.serve import shutdown as shutdown_registry

            shutdown_registry.register(self)
        except BaseException:
            self.close()
            raise

    def _register_fleet_gauges(self, obs: "Observability") -> None:
        """Pull-style fleet gauges: refreshed by a registry collector at
        scrape time, so per-worker queue depth and topology are always
        current without a background publisher thread."""
        reg = obs.registry
        g_running = reg.gauge(
            "repro_fleet_workers_running", "Worker slots in RUNNING state."
        )
        g_pending = reg.gauge(
            "repro_fleet_pending",
            "In-flight requests (dispatched + parked).",
        )
        g_epoch = reg.gauge(
            "repro_fleet_epoch", "Active shared-artifact epoch."
        )
        g_assigned = reg.gauge(
            "repro_fleet_worker_assigned",
            "Requests assigned per worker slot (queued + in flight).",
            labelnames=("worker",),
        )
        g_restarts = reg.gauge(
            "repro_fleet_worker_restarts",
            "Lifetime restarts per worker slot.",
            labelnames=("worker",),
        )

        def collect_fleet() -> None:
            with self._lock:
                records = [
                    (h.index, h.state, h.assigned, max(h.n_restarts, 0))
                    for h in self._workers
                ]
                n_pending = len(self._pending)
                epoch = self._epoch
            g_running.set(
                sum(1 for _, state, _, _ in records if state == RUNNING)
            )
            g_pending.set(n_pending)
            g_epoch.set(epoch)
            for index, _state, assigned, restarts in records:
                g_assigned.labels(worker=str(index)).set(assigned)
                g_restarts.labels(worker=str(index)).set(restarts)

        reg.add_collector(collect_fleet)

    # ----------------------------------------------------------- worker spawn

    def _start_worker(self, index: int) -> None:
        """(Re)spawn the worker in slot ``index`` (slot must be BACKOFF)."""
        with self._lock:
            handle = self._workers[index]
            if handle.state not in (BACKOFF,):
                return
            handle.generation += 1
            handle.n_restarts += 1
            handle.state = STARTING
            handle.started_at = time.time()
            handle.process = None
            handle.queue = None
            handle.conn = None
            generation = handle.generation
            shm_name = self._artifact.name
        request_queue = self._ctx.Queue(maxsize=self.queue_depth)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        self._heartbeat[index] = time.time()
        process = self._ctx.Process(
            target=fleet_worker_main,
            args=(
                index, generation, shm_name, request_queue, child_conn,
                self._heartbeat, self._worker_config,
            ),
            name=f"repro-fleet-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with self._lock:
            handle = self._workers[index]
            # STARTING at the matching generation is the only state this
            # spawn may adopt: a generation bump means a racing restart,
            # and any other state (STOPPED in particular) means close()
            # ran between the first locked section and process.start() —
            # adopting the process there would orphan it past shutdown.
            stale = (
                handle.generation != generation
                or handle.state != STARTING
            )
            if not stale:
                handle.process = process
                handle.queue = request_queue
                handle.conn = parent_conn
        if stale:  # pragma: no cover - raced a restart or close()
            process.kill()
            process.join(timeout=2.0)
            try:
                parent_conn.close()
            except OSError:
                pass
            request_queue.cancel_join_thread()
            request_queue.close()

    # -------------------------------------------------------------- admission

    def _validate(self, X: Any) -> np.ndarray:
        rows = np.asarray(X, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"X must be one row or a non-empty (n, q) matrix, "
                f"got shape {rows.shape}"
            )
        if rows.shape[1] != self._n_features:
            raise ValueError(
                f"served artifact expects {self._n_features} features, "
                f"got {rows.shape[1]}"
            )
        return rows

    def _dispatch_to(
        self, pending: _Pending, candidates: Sequence[_WorkerHandle]
    ) -> bool:
        """Queue ``pending`` on the least-loaded candidate (caller holds
        the fleet lock).  Returns False when every queue refused."""
        trace: Optional[TraceContext] = None
        if (
            pending.ctx is not None
            and pending.ctx.sampled
            and self.obs is not None
        ):
            # One "dispatch" span per attempt; the wire context points at
            # it so the worker's spans nest under this exact dispatch.
            span = self.obs.tracer.start(
                "dispatch", role="supervisor", ctx=pending.ctx,
                attrs={
                    "rid": pending.rid, "kind": pending.kind,
                    "attempt": pending.attempts,
                },
            )
            pending.span = span
            trace = span.context
        for handle in sorted(candidates, key=lambda h: h.assigned):
            if handle.queue is None:
                continue
            try:
                handle.queue.put_nowait(
                    ("req", pending.rid, pending.kind, pending.rows,
                     pending.deadline, pending.enqueued, trace)
                )
            except queue_mod.Full:
                continue
            except (ValueError, OSError):  # pragma: no cover - closed queue
                continue
            pending.worker = handle
            handle.assigned += 1
            return True
        if pending.span is not None:
            pending.span.end("no-worker")
            pending.span = None
        return False

    def _submit(
        self,
        kind: str,
        X: Any,
        timeout: Optional[float],
        ctx: Optional[TraceContext] = None,
    ) -> Future:
        rows = self._validate(X)
        timeout_s = (
            self.default_timeout_s if timeout is None else float(timeout)
        )
        pending = _Pending(kind, rows, time.time() + timeout_s, ctx)
        with self._lock:
            if self._closed:
                raise FleetClosed("FleetServer is closed")
            pending.rid = self._next_rid
            self._next_rid += 1
            candidates = [h for h in self._workers if h.state == RUNNING]
            dispatched = self._dispatch_to(pending, candidates)
            if dispatched:
                self._pending[pending.rid] = pending
            n_candidates = len(candidates)
        if not dispatched:
            self.metrics.record_shed()
            raise Overloaded(
                f"admission control: {n_candidates} running worker(s), "
                f"every queue at depth {self.queue_depth}"
            )
        return pending.future

    def submit_predict(
        self,
        X: Any,
        timeout: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Future:
        """Dispatch a ``predict`` request; resolves to the label rows.

        ``ctx`` is an optional trace context: sampled requests get a
        ``dispatch`` span and the worker ships its stage spans back on
        the same trace."""
        return self._submit("predict", X, timeout, ctx)

    def submit_decision_scores(
        self,
        X: Any,
        timeout: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Future:
        """Dispatch a ``scores`` request; resolves to (n, k) scores."""
        return self._submit("scores", X, timeout, ctx)

    def predict(self, X: Any, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous fleet prediction (submit + wait)."""
        wait_s = self.default_timeout_s if timeout is None else float(timeout)
        result = self.submit_predict(X, timeout).result(timeout=wait_s + 2.0)
        return np.asarray(result)

    def decision_scores(
        self, X: Any, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Synchronous fleet scores (submit + wait)."""
        wait_s = self.default_timeout_s if timeout is None else float(timeout)
        result = self.submit_decision_scores(X, timeout).result(
            timeout=wait_s + 2.0
        )
        return np.asarray(result)

    # -------------------------------------------------------------- collector

    def _collect_loop(self) -> None:
        while not self._closed_event.is_set():
            with self._lock:
                conns: Dict[Connection, _WorkerHandle] = {
                    h.conn: h
                    for h in self._workers
                    if h.conn is not None and h.state in (STARTING, RUNNING)
                }
            if not conns:
                self._closed_event.wait(0.02)
                continue
            try:
                ready = connection_wait(list(conns), timeout=0.1)
            except OSError:  # pragma: no cover - conn torn down mid-wait
                continue
            for conn in ready:
                handle = conns[conn]
                try:
                    message = conn.recv()
                except Exception:  # noqa: BLE001 - EOF/garbage from a kill
                    with self._lock:
                        if handle.conn is conn:
                            handle.conn = None
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    continue
                self._on_message(handle, message)

    def _on_message(
        self, handle: _WorkerHandle, message: Tuple[Any, ...]
    ) -> None:
        tag = message[0]
        if tag == "res":
            self._on_response(handle, message)
        elif tag == "ready":
            _, index, generation, epoch = message
            redispatched: List[_Pending] = []
            with self._lock:
                if handle.generation == generation:
                    handle.state = RUNNING
                    handle.epoch = int(epoch)
                    handle.ready_at = time.time()
                    # A recovered worker first drains the parked backlog:
                    # retryable requests that survived a multi-worker
                    # outage waiting for anyone to come back.  Expired
                    # ones are answered "deadline" worker-side.
                    parked = [
                        p for p in self._pending.values()
                        if p.worker is None
                    ]
                    for pending in parked:
                        if self._dispatch_to(pending, (handle,)):
                            pending.attempts += 1
                            redispatched.append(pending)
                self._state_cond.notify_all()
            for pending in redispatched:
                self.metrics.record_retry()
                self._record_retry_span(pending)
        elif tag == "reloaded":
            _, _index, generation, epoch = message
            with self._lock:
                if handle.generation == generation:
                    handle.epoch = int(epoch)
                state = self._swap_state
                if state is not None and int(epoch) == state["epoch"]:
                    state["waiting"].discard((handle.index, generation))
                self._state_cond.notify_all()
        elif tag == "reload-failed":
            _, index, _generation, epoch, detail = message
            self.metrics.record_problem(
                "swap-reload-failed", f"worker {index}: {detail}"
            )
            with self._lock:
                state = self._swap_state
                if state is not None and int(epoch) == state["epoch"]:
                    state["failed"].append((index, detail))
                self._state_cond.notify_all()
        elif tag == "corrupt":
            _, index, _generation, epoch = message
            self.metrics.record_problem(
                "artifact-corruption",
                f"worker {index} failed CRC on epoch {epoch}",
            )
            with self._lock:
                artifact = self._artifact
            # Repair in place before the restart path re-maps the segment
            # (the worker exits with EXIT_CORRUPT right after reporting).
            artifact.restore_pristine()

    def _on_response(
        self, handle: _WorkerHandle, message: Tuple[Any, ...]
    ) -> None:
        _, rid, status, payload, meta = message
        with self._lock:
            pending = self._pending.get(rid)
            if pending is None or pending.worker is not handle:
                # Late/duplicate answer from a worker we already failed,
                # or from one whose request was re-dispatched elsewhere.
                # Leave a re-dispatched pending in place: the worker it
                # now belongs to owns the answer (accepting the stale one
                # here would leak the new owner's ``assigned`` slot).
                return
            self._pending.pop(rid, None)
            handle.assigned = max(handle.assigned - 1, 0)
            span = pending.span
            pending.span = None
        if span is not None:
            span.end("ok" if status == "ok" else str(status))
        if isinstance(meta, dict):
            if "encode_s" in meta:
                self.metrics.record_stage_times(
                    float(meta["encode_s"]), float(meta.get("score_s", 0.0))
                )
            if self.obs is not None:
                self.obs.tracer.ingest(meta.get("spans"))
        if pending.future.done():  # pragma: no cover - resolved late
            return
        if status == "ok":
            pending.future.set_result(payload)
            self.metrics.record_request(time.time() - pending.enqueued)
        elif status == "deadline":
            pending.future.set_exception(
                DeadlineExceeded(
                    f"request {rid} expired before a worker scored it"
                )
            )
            self.metrics.record_error()
            self.metrics.record_problem(
                "deadline-expired", f"request {rid}"
            )
        else:
            pending.future.set_exception(RequestFailed(str(payload)))
            self.metrics.record_error()

    def _end_dispatch_span(self, pending: _Pending, status: str) -> None:
        """Close ``pending``'s live dispatch span (caller holds the fleet
        lock; span locks rank after it, see ``LOCK_ORDER``)."""
        span = pending.span
        pending.span = None
        if span is not None:
            span.end(status)

    def _record_retry_span(self, pending: _Pending) -> None:
        """Mark a re-dispatch on the request's trace — the ``retry`` span
        the chaos drill's span-tree acceptance predicate looks for."""
        if (
            self.obs is None
            or pending.ctx is None
            or not pending.ctx.sampled
        ):
            return
        self.obs.tracer.ingest([span_record(
            "retry", "supervisor", pending.ctx, wall_now(), 0.0,
            attrs={"rid": pending.rid, "attempt": pending.attempts},
        )])

    # --------------------------------------------------------------- watchdog

    def _watch_loop(self) -> None:
        while not self._closed_event.is_set():
            try:
                self._watch_tick()
            except Exception as exc:  # noqa: BLE001 - supervisor must live
                # One request's (or one worker's) bookkeeping error must
                # never take down the watchdog: losing this thread loses
                # restarts, hang detection and parked-request expiry for
                # the rest of the fleet's life.
                self.metrics.record_problem(
                    "watchdog-error", f"{type(exc).__name__}: {exc}"
                )
            self._closed_event.wait(self.heartbeat_interval_s)

    def _watch_tick(self) -> None:
        now = time.time()
        dead: List[Tuple[_WorkerHandle, str]] = []
        to_start: List[int] = []
        with self._lock:
            for handle in self._workers:
                if handle.state in (STARTING, RUNNING):
                    process = handle.process
                    if process is not None and not process.is_alive():
                        dead.append((handle, "crashed"))
                    elif (
                        handle.state == RUNNING
                        and now - self._heartbeat[handle.index]
                        > self.hang_timeout_s
                    ):
                        dead.append((handle, "hung"))
                    elif (
                        handle.state == STARTING
                        and now - handle.started_at
                        > self.start_timeout_s
                    ):
                        dead.append((handle, "start-timeout"))
                elif (
                    handle.state == BACKOFF
                    and handle.restart_at <= now
                    and handle.restart_at > 0
                ):
                    to_start.append(handle.index)
        expired: List[_Pending] = []
        with self._lock:
            # Parked requests (worker=None, waiting out an outage)
            # are the supervisor's to expire; dispatched ones get
            # their "deadline" answer from the worker that holds them.
            for pending in list(self._pending.values()):
                if pending.worker is None and now > pending.deadline:
                    self._pending.pop(pending.rid, None)
                    expired.append(pending)
        for pending in expired:
            if pending.future.done():  # pragma: no cover - resolved late
                continue
            pending.future.set_exception(
                DeadlineExceeded(
                    f"request {pending.rid} expired while parked "
                    f"(no worker available)"
                )
            )
            self.metrics.record_error()
            self.metrics.record_problem(
                "deadline-expired", f"request {pending.rid} (parked)"
            )
        for handle, reason in dead:
            self._handle_worker_death(handle, reason)
        for index in to_start:
            self._start_worker(index)

    def _handle_worker_death(
        self, handle: _WorkerHandle, reason: str
    ) -> None:
        process = handle.process
        exitcode: Optional[int] = None
        if process is not None:
            if process.is_alive():
                # Hung (or start-timeout) worker: SIGKILL so restart is
                # the single recovery path and SIGKILL-survivability is
                # exercised by construction.
                process.kill()
                process.join(timeout=2.0)
            exitcode = process.exitcode
        corrupt = exitcode == EXIT_CORRUPT
        with self._lock:
            if handle.state not in (STARTING, RUNNING):
                return
            victims = [
                p for p in self._pending.values() if p.worker is handle
            ]
            handle.assigned = 0
            handle.last_exitcode = exitcode
            handle.ready_at = None
            old_queue = handle.queue
            old_conn = handle.conn
            handle.queue = None
            handle.conn = None
            handle.process = None
            now = time.time()
            handle.restart_log = [
                t for t in handle.restart_log
                if now - t < self.restart_window_s
            ]
            handle.restart_log.append(now)
            strikes = len(handle.restart_log)
            if strikes >= self.max_restarts:
                handle.state = BROKEN
            else:
                handle.state = BACKOFF
                backoff = min(
                    self.restart_backoff_s * (2 ** (strikes - 1)),
                    self.restart_backoff_max_s,
                )
                handle.restart_at = now + backoff
            new_state = handle.state
            self._state_cond.notify_all()
        self.metrics.record_problem(
            f"worker-{reason}",
            f"worker {handle.index} gen {handle.generation} "
            f"exitcode={exitcode}",
        )
        if self.obs is not None:
            self.obs.dump_flight(f"worker-{reason}")
        if corrupt:
            # The corrupt report may have died with the worker; repair
            # from the exit code alone (idempotent if already repaired).
            with self._lock:
                artifact = self._artifact
            artifact.restore_pristine()
            self.metrics.record_problem(
                "artifact-repaired",
                f"segment restored after worker {handle.index} exit",
            )
        if new_state == BROKEN:
            self.metrics.record_problem(
                "circuit-open",
                f"worker {handle.index}: {strikes} deaths within "
                f"{self.restart_window_s}s; no further restarts",
            )
            if self.obs is not None:
                self.obs.dump_flight("breaker-trip")
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:  # pragma: no cover
                pass
        if old_queue is not None:
            old_queue.cancel_join_thread()
            old_queue.close()
        self._retry_or_fail(victims)

    def _retry_or_fail(self, victims: List[_Pending]) -> None:
        """Re-dispatch a dead worker's in-flight requests on survivors.

        Only ``predict`` requests are retried (idempotent by contract);
        anything unretryable — wrong kind, deadline too close, retry
        budget spent — fails with :class:`WorkerCrashed`.  A retryable
        request with no survivor able to take it right now (a multi-worker
        outage, e.g. fleet-wide corruption exits) is *parked* instead of
        failed: it stays pending with no worker, the next worker to come
        back picks it up, and the watchdog expires it at its deadline.
        """
        for pending in victims:
            outcome = "fail"
            retryable = (
                self.retry_on_worker_loss
                and pending.kind == "predict"
                and pending.attempts < self.max_retries
                and time.time() < pending.deadline
            )
            if retryable:
                with self._lock:
                    if pending.rid not in self._pending:
                        # The collector raced us: the worker answered
                        # before dying and the future is already
                        # resolved.  Nothing to retry or fail.
                        outcome = "resolved"
                    else:
                        self._end_dispatch_span(pending, "worker-lost")
                        pending.worker = None
                        candidates = [
                            h for h in self._workers if h.state == RUNNING
                        ]
                        if self._dispatch_to(pending, candidates):
                            pending.attempts += 1
                            outcome = "retried"
                        else:
                            outcome = "parked"
            else:
                with self._lock:
                    if self._pending.pop(pending.rid, None) is None:
                        outcome = "resolved"
                    else:
                        self._end_dispatch_span(pending, "worker-lost")
            if outcome == "retried":
                self.metrics.record_retry()
                self._record_retry_span(pending)
                continue
            if outcome in ("parked", "resolved"):
                continue
            if pending.future.done():  # pragma: no cover - resolved late
                continue
            pending.future.set_exception(
                WorkerCrashed(
                    f"request {pending.rid} lost with its worker "
                    f"(attempts={pending.attempts})"
                )
            )
            self.metrics.record_error()
            self.metrics.record_problem(
                "request-lost", f"request {pending.rid}"
            )

    # --------------------------------------------------------------- hot-swap

    def deploy(
        self, model: Any, *, timeout_s: float = 30.0
    ) -> Dict[str, object]:
        """Fleet-wide all-or-nothing hot-swap to a new artifact epoch.

        Publishes the artifact as epoch N+1, asks every running worker to
        reload, and flips the fleet's active epoch only when **all** of
        them ack (workers that die mid-swap restart onto whichever epoch
        is active and don't block the flip).  On partial failure the
        acked workers are reloaded back to the last-good epoch, the new
        segment is unlinked, and the returned record says why — the fleet
        keeps serving the last-good model throughout.
        """
        artifact = as_quantized_artifact(model)
        if int(artifact.n_features_) != self._n_features:
            raise ValueError(
                f"cannot hot-swap: fleet serves {self._n_features} "
                f"features, incoming artifact has {artifact.n_features_}"
            )
        with self._lock:
            if self._closed:
                raise FleetClosed("FleetServer is closed")
            if self._swap_state is not None:
                raise RuntimeError("another fleet hot-swap is in progress")
            new_epoch = self._epoch + 1
            self._swap_state = {
                "epoch": new_epoch, "waiting": set(), "failed": [],
            }
        new_artifact: Optional[SharedArtifact] = None
        try:
            new_artifact = SharedArtifact.publish(artifact, epoch=new_epoch)
            with self._lock:
                targets = [
                    h for h in self._workers if h.state == RUNNING
                ]
                state = self._swap_state
                assert state is not None
                state["waiting"] = {
                    (h.index, h.generation) for h in targets
                }
            send_failures: List[Tuple[int, str]] = []
            for handle in targets:
                try:
                    assert handle.queue is not None
                    handle.queue.put(
                        ("reload", new_epoch, new_artifact.name),
                        timeout=2.0,
                    )
                except (queue_mod.Full, ValueError, OSError, AssertionError):
                    send_failures.append(
                        (handle.index, "reload message not deliverable")
                    )
            with self._lock:
                state = self._swap_state
                assert state is not None
                state["failed"].extend(send_failures)

                def settled() -> bool:
                    # Stragglers that died/restarted mid-swap drop out of
                    # the waiting set: their replacement maps the active
                    # epoch at spawn.
                    live = {
                        (i, g)
                        for (i, g) in state["waiting"]
                        if self._workers[i].generation == g
                        and self._workers[i].state == RUNNING
                    }
                    state["waiting"] = live
                    return not live or bool(state["failed"])

                self._state_cond.wait_for(settled, timeout=timeout_s)
                failed = list(state["failed"])
                remaining = set(state["waiting"])
            success = not failed and not remaining
            if success:
                with self._lock:
                    old_artifact = self._artifact
                    self._artifact = new_artifact
                    self._epoch = new_epoch
                self.metrics.record_swap()
                old_artifact.unlink()
                old_artifact.close()
                return {
                    "ok": True,
                    "epoch": new_epoch,
                    "workers": len(targets),
                }
            # ---- rollback: last-good epoch stays authoritative --------
            with self._lock:
                last_good = self._artifact.name
                last_epoch = self._epoch
                acked = [
                    h for h in self._workers
                    if h.state == RUNNING and h.epoch == new_epoch
                ]
            for handle in acked:
                try:
                    assert handle.queue is not None
                    handle.queue.put(
                        ("reload", last_epoch, last_good), timeout=2.0
                    )
                except (queue_mod.Full, ValueError, OSError, AssertionError):
                    pass  # the worker will be restarted by the watchdog
            new_artifact.unlink()
            new_artifact.close()
            self.metrics.record_problem(
                "swap-rollback",
                f"epoch {new_epoch}: failed={failed} "
                f"unacked={sorted(i for i, _ in remaining)}",
            )
            return {
                "ok": False,
                "epoch": last_epoch,
                "rejected_epoch": new_epoch,
                "failed": failed,
                "unacked": sorted(i for i, _ in remaining),
            }
        finally:
            with self._lock:
                self._swap_state = None
                self._state_cond.notify_all()

    # ------------------------------------------------------------ observation

    @property
    def active_epoch(self) -> int:
        return self._epoch

    @property
    def shared_artifact(self) -> SharedArtifact:
        """The supervisor-side handle of the active segment (chaos/test
        surface: ``array_view`` to corrupt, ``restore_pristine`` to
        repair)."""
        return self._artifact

    def worker_states(self) -> List[str]:
        with self._lock:
            return [h.state for h in self._workers]

    def worker_pids(self) -> List[Optional[int]]:
        with self._lock:
            return [
                h.process.pid if h.process is not None else None
                for h in self._workers
            ]

    def running_indices(self) -> List[int]:
        with self._lock:
            return [h.index for h in self._workers if h.state == RUNNING]

    def wait_all_running(self, timeout: Optional[float] = None) -> bool:
        """Block until every non-broken worker slot is RUNNING."""
        with self._state_cond:
            return self._state_cond.wait_for(
                lambda: all(
                    h.state in (RUNNING, BROKEN) for h in self._workers
                )
                and any(h.state == RUNNING for h in self._workers),
                timeout=timeout,
            )

    def inject_chaos(self, index: int, directive: Dict[str, Any]) -> bool:
        """Deliver a chaos directive to worker ``index`` (test harness)."""
        with self._lock:
            handle = self._workers[index]
            target_queue = handle.queue if handle.state == RUNNING else None
        if target_queue is None:
            return False
        try:
            target_queue.put(("chaos", dict(directive)), timeout=2.0)
            return True
        except (queue_mod.Full, ValueError, OSError):
            return False

    def kill_worker(self, index: int) -> Optional[int]:
        """SIGKILL worker ``index`` (chaos surface); returns the pid."""
        with self._lock:
            handle = self._workers[index]
            process = handle.process
            pid = process.pid if process is not None else None
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - already gone
                return None
        return pid

    def stats(self) -> Dict[str, object]:
        """Metrics snapshot + fleet topology (the operator surface)."""
        snapshot = self.metrics.snapshot()
        with self._lock:
            workers = [h.as_record() for h in self._workers]
            epoch = self._epoch
            n_pending = len(self._pending)
        running = sum(1 for w in workers if w["state"] == RUNNING)
        snapshot["fleet"] = {
            "n_workers": self.n_workers,
            "n_running": running,
            "epoch": epoch,
            "pending": n_pending,
            "queue_depth": self.queue_depth,
            "service_floor_s": self.service_floor_s,
            "breaker_open": [
                int(w["index"]) for w in workers if w["breaker_open"]
            ],
            "workers": workers,
        }
        return snapshot

    # ------------------------------------------------------------- lifecycle

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop intake, fail pending requests, stop and reap the workers,
        release the shared segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            workers = list(self._workers)
            for handle in workers:
                handle.state = STOPPED
        self._closed_event.set()
        for item in pending:
            span = item.span
            item.span = None
            if span is not None:
                span.end("closed")
            if not item.future.done():
                item.future.set_exception(
                    FleetClosed("FleetServer closed with request in flight")
                )
        for handle in workers:
            if handle.queue is not None:
                try:
                    handle.queue.put_nowait(("stop",))
                except (queue_mod.Full, ValueError, OSError):
                    pass
        for thread in (self._collector, self._watchdog):
            if thread.is_alive():
                thread.join(timeout=timeout_s)
        deadline = time.time() + timeout_s
        for handle in workers:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(deadline - time.time(), 0.1))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        for handle in workers:
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
                handle.conn = None
            if handle.queue is not None:
                handle.queue.cancel_join_thread()
                handle.queue.close()
                handle.queue = None
            handle.process = None
        try:
            self._artifact.unlink()
            self._artifact.close()
        except BufferError:  # pragma: no cover - a live chaos view
            self._artifact.unlink()
        from repro.serve import shutdown as shutdown_registry

        shutdown_registry.unregister(self)
        if self.obs is not None:
            self.obs.dump_flight("shutdown")

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetServer(n_workers={self.n_workers}, "
            f"epoch={self._epoch})"
        )
