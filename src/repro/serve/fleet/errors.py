"""Typed failure surface of the serving fleet.

Callers branch on these: an :class:`Overloaded` rejection is *shed load*
(retry later, count it, never treat it as a model failure), a
:class:`DeadlineExceeded` is a request that aged out before a worker could
score it, and a :class:`WorkerCrashed` is a request lost with its worker
after retries were exhausted (or disabled).  Everything inherits
:class:`FleetError` so "any fleet-side failure" is one except clause.
"""

from __future__ import annotations


class FleetError(RuntimeError):
    """Base class for fleet-side request failures."""


class FleetClosed(FleetError):
    """The fleet is shut down; no new requests are accepted."""


class Overloaded(FleetError):
    """Admission control rejected the request: every worker queue is full
    (or no worker is up).  Explicit shed instead of unbounded queueing —
    the caller sees backpressure immediately rather than a deadline
    timeout after sitting in a queue that could never drain in time."""


class DeadlineExceeded(FleetError):
    """The request's deadline passed before a worker scored it."""


class WorkerCrashed(FleetError):
    """The worker handling the request died and the request could not be
    retried on a survivor within its deadline."""


class RequestFailed(FleetError):
    """The worker raised while scoring this request (bad input reaching
    the model, not a fleet fault)."""
