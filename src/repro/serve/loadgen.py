"""Closed-loop load generator for serving benchmarks and smoke tests.

:func:`run_load` fires single-row requests at a target from ``concurrency``
worker threads (each worker issues its next request as soon as the
previous one resolves — a closed loop, the standard shape for latency
benchmarking) and returns a :class:`LoadReport` with throughput, latency
percentiles, failure counts and the per-request predictions (for parity
assertions against a reference model).

The target is anything exposing the submit protocol
(``submit_predict`` / ``submit_decision_scores`` returning futures — a
:class:`~repro.serve.server.ModelServer`, a
:class:`~repro.serve.fleet.server.FleetServer`) or any callable
``fn(row) -> result`` (e.g. ``lambda row: model.predict(row)`` — the
per-request baseline the serving benchmark compares against).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.obs.ids import wall_now
from repro.obs.trace import Tracer, root_record
from repro.serve.metrics import latency_summary_ms
from repro.utils.validation import check_positive_int

#: Root spans a load worker accumulates before shipping them to the
#: tracer in one ``ingest`` (one ring acquisition per this many
#: requests).  Small enough that a worker's tail is a fraction of any
#: realistic ring, large enough to amortise the lock.
_SPAN_FLUSH_EVERY = 64


class LoadReport:
    """Outcome of one load run."""

    def __init__(
        self,
        n_requests: int,
        n_failed: int,
        wall_s: float,
        latencies_s: np.ndarray,
        predictions: List[object],
    ) -> None:
        self.n_requests = int(n_requests)
        self.n_failed = int(n_failed)
        self.wall_s = float(wall_s)
        self.latencies_s = latencies_s
        self.predictions = predictions

    @property
    def n_ok(self) -> int:
        return self.n_requests - self.n_failed

    @property
    def throughput_rps(self) -> float:
        return self.n_ok / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms(self) -> Optional[Dict[str, float]]:
        """Latency summary over *successful* requests only.

        Failed requests typically fail fast; mixing their near-zero
        timings in would dilute the percentiles and let a partially
        broken, fast-failing server report better latency than the
        requests it actually served."""
        ok = np.array(
            [not isinstance(p, BaseException) for p in self.predictions],
            dtype=bool,
        )
        return latency_summary_ms(self.latencies_s[ok])

    def as_record(self) -> Dict[str, object]:
        """JSON-ready summary (predictions omitted)."""
        return {
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadReport(n_ok={self.n_ok}, n_failed={self.n_failed}, "
            f"throughput={self.throughput_rps:.1f} rps)"
        )


def run_load(
    target: Union[Any, Callable],
    X: Any,
    *,
    n_requests: int,
    concurrency: int = 32,
    mode: str = "predict",
    rows_per_request: int = 1,
    on_request: Optional[Callable[[int], None]] = None,
    tracer: Optional[Tracer] = None,
) -> LoadReport:
    """Fire ``n_requests`` requests of ``rows_per_request`` rows each.

    Request ``i`` sends row ``X[i % len(X)]`` (or, with
    ``rows_per_request`` > 1, the block of that many consecutive rows
    starting there, wrapping around — a client-side burst, which the
    ``MicroBatcher`` coalesces natively and answers with exactly that
    request's result rows); workers split the request index space
    evenly.  ``mode`` selects ``predict`` or ``scores``
    against a server target — anything exposing ``submit_predict`` /
    ``submit_decision_scores``, so ModelServer and FleetServer both
    qualify (callables receive the row and define their own semantics).  ``on_request(i)`` — when given — runs
    on the worker thread right after request ``i`` is issued, letting the
    caller interleave control actions (e.g. a hot-swap) at a known point
    in the load.

    Per-request results land in ``report.predictions[i]`` (the exception
    object for failed requests), so parity checks against a reference
    model are one array comparison away.

    ``tracer`` — an optional :class:`repro.obs.Tracer`: each sampled
    request gets a root ``request`` span (role ``client``) and, against
    a submit-protocol target, the root's context rides the ``ctx=``
    keyword so the server/fleet links its own spans under it.  Root
    spans are *batch-reported*: each worker keeps the
    :meth:`~repro.obs.trace.Tracer.sample_root` context, times the
    request, and ships :func:`~repro.obs.trace.root_record` dicts via
    one :meth:`~repro.obs.trace.Tracer.ingest` per
    ``_SPAN_FLUSH_EVERY`` requests — the hot loop never takes a ring
    lock or allocates a live span (measured: per-request span objects
    convoy the GIL against the batcher thread at high request rates —
    see ``docs/observability.md``).  An unsampled request costs one
    sampling decision.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValueError(f"X must be a non-empty (n, q) matrix, got {X.shape}")
    n_requests = check_positive_int(n_requests, "n_requests")
    concurrency = check_positive_int(concurrency, "concurrency")
    rows_per_request = check_positive_int(rows_per_request, "rows_per_request")
    if mode not in ("predict", "scores"):
        raise ValueError(f"mode must be 'predict' or 'scores', got {mode!r}")

    if hasattr(target, "submit_predict"):
        submit = (
            target.submit_predict if mode == "predict"
            else target.submit_decision_scores
        )

        def issue(row: Any, ctx: Any) -> Any:
            return submit(row, ctx=ctx).result()

    else:
        callable_target = target

        def issue(row: Any, ctx: Any) -> Any:
            # Plain callables take no context; the root span still times
            # and records the request.
            return callable_target(row)

    latencies = np.zeros(n_requests, dtype=np.float64)
    predictions: List[object] = [None] * n_requests
    failed = [0] * concurrency
    hook_errors: List[BaseException] = []
    start_gate = threading.Event()

    n_rows = X.shape[0]
    if rows_per_request == 1:
        payloads = None
    else:
        # Materialise each request's row block up front so per-request
        # work inside the load loop is a list index, not fancy indexing.
        payloads = [
            X[
                np.arange(i * rows_per_request, (i + 1) * rows_per_request)
                % n_rows
            ]
            for i in range(n_requests)
        ]

    traced = tracer is not None and tracer.enabled
    # Anchor wall-clock once so span timestamps come from perf_counter
    # arithmetic instead of a time.time() call per request.
    wall_anchor = wall_now() - time.perf_counter() if traced else 0.0

    def worker(worker_id: int) -> None:
        start_gate.wait()
        span_buf: List[Dict[str, object]] = []
        for i in range(worker_id, n_requests, concurrency):
            row = X[i % n_rows] if payloads is None else payloads[i]
            ctx = tracer.sample_root() if traced else None
            status = "ok"
            begin = time.perf_counter()
            try:
                result = issue(row, ctx)
            except Exception as exc:  # noqa: BLE001 - recorded per request
                predictions[i] = exc
                failed[worker_id] += 1
                status = "error"
            else:
                predictions[i] = result
            done = time.perf_counter()
            latencies[i] = done - begin
            if ctx is not None:
                span_buf.append(root_record(
                    "request", "client", ctx,
                    wall_anchor + begin, done - begin, status=status,
                ))
                if len(span_buf) >= _SPAN_FLUSH_EVERY:
                    tracer.ingest(span_buf)
                    span_buf.clear()
            if on_request is not None:
                # A hook failure must not silently kill this worker's
                # remaining requests (the report would under-count);
                # collect and surface after the run.
                try:
                    on_request(i)
                except BaseException as exc:  # noqa: BLE001
                    hook_errors.append(exc)
        if span_buf:
            tracer.ingest(span_buf)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    wall_start = time.perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall_start

    if hook_errors:
        raise RuntimeError(
            f"on_request hook failed {len(hook_errors)} time(s); first: "
            f"{hook_errors[0]!r}"
        ) from hook_errors[0]
    return LoadReport(
        n_requests=n_requests,
        n_failed=sum(failed),
        wall_s=wall_s,
        latencies_s=latencies,
        predictions=predictions,
    )
