"""Chaos-injection harness for the serving fleet.

The fleet's robustness claims (SIGKILL survivable, hang detection,
crash-loop circuit breaker, corruption repair) are only claims until
something hostile exercises them under load.  This module is that
something: :func:`run_chaos_drill` drives closed-loop load through
:func:`~repro.serve.loadgen.run_load` while injecting one fault mid-run —
a worker SIGKILL, a heartbeat-stopping hang, added per-request latency,
or artifact corruption — then reports what the fleet did about it:
request outcomes split into **ok / shed / failed** (shed =
:class:`~repro.serve.fleet.errors.Overloaded`, deliberate backpressure;
failed = everything else, the number that must be zero for a surviving
fleet), recovery time back to an all-running fleet, retry/problem
counters, and per-worker restart counts.

:func:`run_crash_loop_drill` is the breaker-side drill: kill one worker
repeatedly and verify the supervisor opens the circuit instead of
hot-looping restarts.

Driven by ``repro chaos`` (CLI), the ``fleet_resilience`` perf scenario,
and the test suite.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.recorder import find_dumps, validate_dump
from repro.obs.trace import Tracer
from repro.serve.fleet.errors import Overloaded
from repro.serve.fleet.server import BROKEN, RUNNING, FleetServer
from repro.serve.loadgen import LoadReport, run_load

#: Fault kinds :func:`run_chaos_drill` can inject.
FAULTS = ("kill", "hang", "slow", "corrupt")

#: Probe cadence while watching the fleet recover.
_POLL_S = 0.01


def classify_outcomes(predictions: List[object]) -> Dict[str, int]:
    """Split per-request results into ok / shed / failed counts.

    Shed requests (:class:`Overloaded`) are admission control working as
    designed; *failed* counts every other exception — the number a
    surviving fleet must keep at zero.
    """
    ok = shed = failed = 0
    for prediction in predictions:
        if isinstance(prediction, Overloaded):
            shed += 1
        elif isinstance(prediction, BaseException):
            failed += 1
        else:
            ok += 1
    return {"ok": ok, "shed": shed, "failed": failed}


def verify_flight_dumps(fleet: FleetServer) -> Optional[List[str]]:
    """Assert the fleet's flight-recorder dumps exist and parse.

    After a disruptive drill (kill/hang/corrupt) a fleet built with an
    observability bundle *must* have written at least one schema-valid
    flight dump — that is the crash path the recorder exists for, so a
    missing or malformed dump fails the drill rather than passing
    silently.  Returns the validated dump paths, or ``None`` when the
    fleet has no ``obs``/``flight_dir`` configured (nothing to check).
    Raises ``RuntimeError`` when no dump exists and ``ValueError`` when
    one fails schema validation.
    """
    obs = getattr(fleet, "obs", None)
    if obs is None or obs.flight_dir is None:
        return None
    paths = find_dumps(obs.flight_dir)
    if not paths:
        raise RuntimeError(
            f"chaos drill expected a flight dump under {obs.flight_dir}; "
            f"none found"
        )
    for path in paths:
        validate_dump(path)
    return [str(path) for path in paths]


class _RecoveryProbe:
    """Watch the fleet from fault injection back to all-running.

    ``recovery_s`` is the time from :meth:`start` until every non-broken
    worker slot reports RUNNING again, having first observed at least one
    slot leave RUNNING (so an undetected fault reads as "not recovered",
    never as an instant recovery).
    """

    def __init__(self, fleet: FleetServer, timeout_s: float) -> None:
        self._fleet = fleet
        self._timeout_s = timeout_s
        self._thread: Optional[threading.Thread] = None
        self.disrupted = False
        self.recovery_s: Optional[float] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._watch, name="repro-chaos-probe", daemon=True
        )
        self._thread.start()

    def _watch(self) -> None:
        t0 = time.perf_counter()
        deadline = t0 + self._timeout_s
        while time.perf_counter() < deadline:
            states = self._fleet.worker_states()
            if not self.disrupted:
                if any(s != RUNNING for s in states):
                    self.disrupted = True
            elif all(s in (RUNNING, BROKEN) for s in states) and any(
                s == RUNNING for s in states
            ):
                self.recovery_s = time.perf_counter() - t0
                return
            time.sleep(_POLL_S)

    def join(self) -> None:
        if self._thread is not None:
            self._thread.join(timeout=self._timeout_s + 1.0)


def inject_fault(
    fleet: FleetServer,
    fault: str,
    *,
    index: int = 0,
    slow_delay_s: float = 0.25,
    corrupt_array: Optional[str] = None,
) -> Dict[str, object]:
    """Inject one fault into the fleet; returns what was done.

    - ``kill`` — SIGKILL worker ``index`` (no cleanup, the hard death);
    - ``hang`` — worker ``index`` stops heartbeating and looping;
    - ``slow`` — worker ``index`` adds ``slow_delay_s`` to every request;
    - ``corrupt`` — flip one element of a published array in the shared
      segment from the supervisor side (every worker's next CRC check
      fails).
    """
    if fault == "kill":
        pid = fleet.kill_worker(index)
        return {"fault": fault, "index": index, "pid": pid}
    if fault == "hang":
        delivered = fleet.inject_chaos(index, {"kind": "hang"})
        return {"fault": fault, "index": index, "delivered": delivered}
    if fault == "slow":
        delivered = fleet.inject_chaos(
            index, {"kind": "slow", "delay_s": float(slow_delay_s)}
        )
        return {
            "fault": fault, "index": index, "delivered": delivered,
            "delay_s": float(slow_delay_s),
        }
    if fault == "corrupt":
        artifact = fleet.shared_artifact
        names = [str(e["name"]) for e in artifact.header["arrays"]]
        if corrupt_array is None:
            preferred = [n for n in names if n in ("words", "codes")]
            corrupt_array = preferred[0] if preferred else names[0]
        flat = artifact.array_view(corrupt_array).reshape(-1)
        if flat.dtype.kind in "ui":
            flat[0] ^= 1
        else:
            flat[0] += 1.0
        return {"fault": fault, "array": corrupt_array}
    raise ValueError(f"unknown fault {fault!r}; expected one of {FAULTS}")


def run_chaos_drill(
    fleet: FleetServer,
    X: Any,
    *,
    n_requests: int = 512,
    concurrency: int = 32,
    fault: str = "kill",
    index: int = 0,
    fault_after: Optional[int] = None,
    slow_delay_s: float = 0.25,
    recovery_timeout_s: float = 15.0,
    mode: str = "predict",
    tracer: Optional[Tracer] = None,
) -> Dict[str, object]:
    """Closed-loop load with one mid-run fault; returns the full picture.

    ``fault_after`` is the request index past which the fault fires
    (default: a quarter of the run, so there is steady state on both
    sides).  The returned record carries the load report, the ok/shed/
    failed split, ``recovery_s`` (None when the fleet never got back to
    all-running inside ``recovery_timeout_s`` — or for ``slow``, which
    disrupts nothing the watchdog can see), retry/shed/problem counters
    and per-worker restart counts.

    ``tracer`` propagates trace contexts through the load (see
    :func:`~repro.serve.loadgen.run_load`).  When the fleet carries an
    observability bundle with a ``flight_dir``, every disruptive fault
    additionally *asserts* that a schema-valid flight dump was written
    (``flight_dumps`` in the record lists the validated paths).
    """
    if fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; expected one of {FAULTS}")
    X = np.asarray(X, dtype=np.float64)
    if fault_after is None:
        fault_after = max(n_requests // 4, 1)

    retries_before = fleet.metrics.n_retries
    shed_before = fleet.metrics.n_shed
    fired = threading.Event()
    injection: Dict[str, object] = {}
    probe = _RecoveryProbe(fleet, timeout_s=recovery_timeout_s)

    def on_request(i: int) -> None:
        if i >= fault_after and not fired.is_set():
            fired.set()
            probe.start()
            injection.update(
                inject_fault(
                    fleet, fault, index=index, slow_delay_s=slow_delay_s
                )
            )

    report: LoadReport = run_load(
        fleet, X,
        n_requests=n_requests, concurrency=concurrency, mode=mode,
        on_request=on_request, tracer=tracer,
    )
    if fault == "slow":
        # Clear the latency injection so later drills see a clean fleet.
        fleet.inject_chaos(index, {"kind": "clear"})
    probe.join()
    if fired.is_set() and probe.recovery_s is None and fault != "slow":
        # Load finished before recovery completed — keep watching.
        fleet.wait_all_running(timeout=recovery_timeout_s)
    stats_after = fleet.stats()
    fleet_after = stats_after["fleet"]
    assert isinstance(fleet_after, dict)

    flight_dumps = (
        verify_flight_dumps(fleet)
        if fired.is_set() and fault != "slow" else None
    )

    outcomes = classify_outcomes(report.predictions)
    return {
        "fault": fault,
        "flight_dumps": flight_dumps,
        "injected": dict(injection),
        "fault_after": int(fault_after),
        "n_requests": int(n_requests),
        "concurrency": int(concurrency),
        "outcomes": outcomes,
        "load": report.as_record(),
        "recovery_s": probe.recovery_s,
        "disrupted": probe.disrupted,
        "worker_states": fleet.worker_states(),
        "n_retries": fleet.metrics.n_retries - retries_before,
        "n_shed": fleet.metrics.n_shed - shed_before,
        "restarts": [
            int(w["restarts"]) for w in fleet_after["workers"]
        ],
        "problem_counts": fleet.metrics.problem_counts(),
    }


def run_crash_loop_drill(
    fleet: FleetServer,
    *,
    index: int = 0,
    max_deaths: int = 6,
    timeout_s: float = 30.0,
) -> Dict[str, object]:
    """Kill worker ``index`` every time it comes back until the breaker
    opens (or ``max_deaths``/``timeout_s`` is hit — a failed drill).

    A healthy supervisor opens the circuit after ``max_restarts`` deaths
    inside ``restart_window_s`` and leaves the slot down; the drill
    reports whether that happened, how many kills it took, and how long.
    """
    t0 = time.perf_counter()
    deadline = t0 + timeout_s
    deaths = 0
    while time.perf_counter() < deadline and deaths < max_deaths:
        state = fleet.worker_states()[index]
        if state == BROKEN:
            break
        if state == RUNNING:
            if fleet.kill_worker(index) is not None:
                # A death only counts once the supervisor observes it
                # (the pid stays killable as a zombie, so re-killing
                # before the watchdog tick would inflate the count
                # without registering breaker strikes).
                while time.perf_counter() < deadline:
                    if fleet.worker_states()[index] != RUNNING:
                        deaths += 1
                        break
                    time.sleep(_POLL_S)
            continue
        time.sleep(_POLL_S)
    tripped = False
    while time.perf_counter() < deadline:
        if fleet.worker_states()[index] == BROKEN:
            tripped = True
            break
        time.sleep(_POLL_S)
    return {
        "tripped": tripped,
        "deaths": deaths,
        "elapsed_s": time.perf_counter() - t0,
        "worker_states": fleet.worker_states(),
        "problem_counts": fleet.metrics.problem_counts(),
        "flight_dumps": verify_flight_dumps(fleet) if tripped else None,
    }
