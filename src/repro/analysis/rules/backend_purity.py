"""``backend-purity`` — no dtype-defaulting array constructors in
backend-routed modules.

Invariant (PR 2): the compute layers route every array through
:class:`~repro.backend.base.ArrayBackend` at an explicitly resolved dtype
so the float32 hot paths never silently upcast to float64.  A bare
``np.zeros(shape)`` (or ``ones``/``empty``/``full``/``arange``/``array``)
defaults its dtype and is exactly how the pre-PR 2 code leaked float64
into float32 pipelines — doubling memory traffic without failing a test.
In ``hdc/``, ``core/``, ``baselines/``, ``deploy/`` and ``backend/``
(which hosts the packed XOR + popcount kernels, where a dtype default
would silently widen ``uint64`` word arrays) every such constructor must
pass ``dtype=`` explicitly (or go through the backend /
``resolve_dtype``); an intentional default takes a
``# repro: allow[backend-purity]`` with the reason.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, List, Tuple

from repro.analysis.core import ModuleContext, Rule, Violation, register_rule

#: constructor name -> index of its positional dtype parameter
#: (None = dtype is only realistically passed by keyword).
_CONSTRUCTORS = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "array": 1,
    "arange": None,
}

_NUMPY_NAMES = ("np", "numpy")


def _has_explicit_dtype(call: ast.Call, positional_index: Any) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    if positional_index is not None and len(call.args) > positional_index:
        # A positional arg in the dtype slot (np.empty(0, np.int64)).
        return not isinstance(call.args[positional_index], ast.Starred)
    return False


@register_rule
class BackendPurityRule(Rule):
    name = "backend-purity"
    description = (
        "dtype-defaulting np.zeros/ones/empty/full/array/arange in "
        "backend-routed modules must pass dtype= explicitly"
    )
    paths: Tuple[str, ...] = ("hdc", "core", "baselines", "deploy", "backend")

    def check(self, module: ModuleContext) -> Iterable[Violation]:
        out: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_NAMES
                and func.attr in _CONSTRUCTORS
            ):
                continue
            if _has_explicit_dtype(node, _CONSTRUCTORS[func.attr]):
                continue
            out.append(
                self.violation(
                    module,
                    node,
                    f"np.{func.attr}(...) defaults its dtype; pass dtype= "
                    "explicitly (ArrayBackend/resolve_dtype keep the "
                    "float32 hot paths from upcasting to float64)",
                )
            )
        return out
