"""``public-api-hygiene`` — ``__all__`` stays truthful, deprecations warn.

Invariant (PR 1): the registries and the ``repro.api`` facade are the
supported surface; ``__all__`` is how each package declares it.  An
``__all__`` entry with no matching definition breaks ``import *`` and
documentation tooling at a distance from the edit that caused it; a
deprecated shim that stops warning silently re-blesses the old API.

Checks, for every module:

- ``__all__`` must be a literal list/tuple of strings;
- every listed name must be defined in (or imported into) the module;
- no duplicate entries;
- a class/function whose docstring declares it *deprecated* must call
  ``warnings.warn`` (directly or via a ``*deprecat*``-named helper)
  somewhere in its body.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import ModuleContext, Rule, Violation, register_rule


def _top_level_names(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Names defined/imported at module top level (+ star-import flag)."""
    names: Set[str] = set()
    star = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / optional-dependency guards: one level deep.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, ast.Import):
                    for alias in sub.names:
                        names.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                names.add(leaf.id)
    return names, star


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            return node
    return None


def _is_deprecated_doc(doc: Optional[str]) -> bool:
    if not doc:
        return False
    head = "\n".join(doc.splitlines()[:6]).lower()
    return "deprecated" in head


def _warns(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute):
            if func.attr == "warn" or "deprecat" in func.attr.lower():
                return True
        elif isinstance(func, ast.Name) and "deprecat" in func.id.lower():
            return True
    return False


@register_rule
class ApiHygieneRule(Rule):
    name = "public-api-hygiene"
    description = (
        "__all__ must be a literal string list of defined names without "
        "duplicates; deprecated shims must warn"
    )
    paths: Tuple[str, ...] = ()

    def check(self, module: ModuleContext) -> Iterable[Violation]:
        out: List[Violation] = []
        out.extend(self._check_all(module))
        out.extend(self._check_deprecations(module))
        return out

    def _check_all(self, module: ModuleContext) -> List[Violation]:
        assign = _find_all_assignment(module.tree)
        if assign is None:
            return []
        value = assign.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return [
                self.violation(
                    module, assign,
                    "__all__ must be a literal list/tuple of strings",
                )
            ]
        out: List[Violation] = []
        entries: List[str] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                out.append(
                    self.violation(
                        module, element,
                        "__all__ entries must be string literals",
                    )
                )
                continue
            entries.append(element.value)
            if entries.count(element.value) > 1:
                out.append(
                    self.violation(
                        module, element,
                        f"duplicate __all__ entry {element.value!r}",
                    )
                )
        defined, star = _top_level_names(module.tree)
        if not star:
            for element in value.elts:
                if (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                    and element.value not in defined
                ):
                    out.append(
                        self.violation(
                            module, element,
                            f"__all__ exports {element.value!r} which is not "
                            "defined or imported in this module",
                        )
                    )
        return out

    def _check_deprecations(self, module: ModuleContext) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if _is_deprecated_doc(ast.get_docstring(node)) and not _warns(node):
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                out.append(
                    self.violation(
                        module, node,
                        f"{kind} {node.name} documents itself as deprecated "
                        "but never calls warnings.warn (silent shims "
                        "re-bless the old API)",
                    )
                )
        return out
