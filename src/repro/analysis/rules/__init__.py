"""Built-in invariant rules.

Importing this package registers every rule with the
:mod:`repro.analysis.core` registry; each module owns one invariant and
documents where that invariant came from (see ``docs/analysis.md`` for
the narrative version).
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    api_hygiene,
    backend_purity,
    cache_coherence,
    lock_discipline,
    seed_determinism,
)

__all__ = [
    "api_hygiene",
    "backend_purity",
    "cache_coherence",
    "lock_discipline",
    "seed_determinism",
]
