"""``cache-coherence`` — every class-memory mutator must bump the cache
version.

Invariant (PR 3, hardened in PR 5): :class:`~repro.hdc.memory.
AssociativeMemory` caches class norms and the normalised bank per
*mutation version*; the serving concurrency contract (no stale cache
survives a mutation, even when the mutation lands mid-compute) holds
only because **every** method that touches the memory arrays bumps the
version via ``invalidate_caches()``.  One forgotten bump means predict
serves scores against a norm cache from a pre-update bank — a silent
accuracy heisenbug under online adaptation, invisible to single-shot
tests.

Mechanically: in any class that defines ``invalidate_caches``, a method
that assigns to ``self._vectors`` (attribute, subscript or augmented) or
calls an in-place backend mutator (``scatter_add_rows``,
``scatter_add_cells``, ``set_rows``, ``set_columns``, ``zero_columns``)
on ``self._vectors`` must also call ``self.invalidate_caches()`` (or
assign through the ``self.vectors`` property, whose setter bumps).
``__init__`` is exempt — there are no caches before construction ends.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import ModuleContext, Rule, Violation, register_rule

_BUMP = "invalidate_caches"
_TARGET = "_vectors"
_PROPERTY = "vectors"
_MUTATING_BACKEND_OPS = {
    "scatter_add_rows",
    "scatter_add_cells",
    "set_rows",
    "set_columns",
    "zero_columns",
}
_EXEMPT = frozenset({"__init__", _BUMP})


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_self_vectors(node: ast.expr) -> bool:
    """``self._vectors`` or any subscript of it."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node) == _TARGET


def _mutations(func: ast.AST) -> List[ast.AST]:
    """AST nodes in ``func`` that mutate the memory array."""
    found: List[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if any(_is_self_vectors(t) for t in targets):
                found.append(node)
        elif isinstance(node, ast.Call):
            func_attr = node.func
            if (
                isinstance(func_attr, ast.Attribute)
                and func_attr.attr in _MUTATING_BACKEND_OPS
                and node.args
                and _is_self_vectors(node.args[0])
            ):
                found.append(node)
    return found


def _bumps_version(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = _self_attr(node.func)
            if callee == _BUMP:
                return True
        elif isinstance(node, ast.Assign):
            # self.vectors = ... routes through the property setter, which
            # bumps the version itself.
            if any(_self_attr(t) == _PROPERTY for t in node.targets):
                return True
    return False


@register_rule
class CacheCoherenceRule(Rule):
    name = "cache-coherence"
    description = (
        "AssociativeMemory-style mutators must call invalidate_caches() "
        "(versioned-cache invariant)"
    )
    paths: Tuple[str, ...] = ("hdc",)

    def check(self, module: ModuleContext) -> Iterable[Violation]:
        out: List[Violation] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and self._has_bump(node):
                out.extend(self._check_class(module, node))
        return out

    @staticmethod
    def _has_bump(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == _BUMP
            for item in cls.body
        )

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> List[Violation]:
        out: List[Violation] = []
        seen: Set[str] = set()
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT or item.name in seen:
                continue
            seen.add(item.name)
            mutations = _mutations(item)
            if mutations and not _bumps_version(item):
                out.append(
                    self.violation(
                        module,
                        mutations[0],
                        f"{cls.name}.{item.name} mutates the class memory "
                        "without calling invalidate_caches(); stale norm "
                        "caches would survive the mutation",
                    )
                )
        return out
