"""``lock-discipline`` — ``@guarded_by`` fields only touched under their
lock; nested acquisitions follow the declared lock order.

Invariant (PR 5): the serving stack's thread-safety rests on a handful
of small critical sections — the version pool behind
``ModelServer._swap_lock``, drain counters behind ``ModelVersion._lock``,
the feedback buffer behind ``OnlineAdapter._lock``, the metrics sink
behind ``ServerMetrics._lock``.  An access that slips outside its lock
is a data race that no single-threaded test can catch.  Classes declare
the contract with :func:`repro.analysis.annotations.guarded_by`; this
rule verifies every lexical read/write of a guarded attribute sits
inside ``with self.<lock>:`` (or a declared alias such as a
``threading.Condition`` built over the same lock), and that lexically
nested ``with self.<lock>`` acquisitions never invert
:data:`repro.analysis.annotations.LOCK_ORDER`.

``__init__`` / ``__del__`` / ``__repr__`` are exempt: construction and
teardown are single-threaded by contract, and ``__repr__`` is
best-effort diagnostic output.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.annotations import LOCK_ORDER, lock_rank
from repro.analysis.core import ModuleContext, Rule, Violation, register_rule

_EXEMPT_METHODS = frozenset({"__init__", "__del__", "__repr__"})


def _rank_for(class_name: str, attr: str) -> Optional[int]:
    """Rank of ``self.<attr>`` in ``class_name``, or by unambiguous
    attribute name when the class-qualified key is not declared (locks
    reached through another object still resolve when their attribute
    name appears exactly once in LOCK_ORDER)."""
    rank = lock_rank(f"{class_name}.{attr}")
    if rank is not None:
        return rank
    matches = [
        i for i, name in enumerate(LOCK_ORDER)
        if name.split(".", 1)[1] == attr
    ]
    return matches[0] if len(matches) == 1 else None


def _decorator_callee_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _string_args(nodes: Iterable[ast.expr]) -> List[str]:
    out = []
    for node in nodes:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.append(node.value)
    return out


class _GuardDecl:
    """One ``@guarded_by`` declaration: lock, aliases, guarded fields."""

    def __init__(
        self,
        lock: str,
        aliases: Tuple[str, ...],
        fields: List[str],
    ) -> None:
        self.lock = lock
        self.aliases = aliases
        self.fields = fields


def _parse_guards(cls: ast.ClassDef) -> List[_GuardDecl]:
    decls: List[_GuardDecl] = []
    for decorator in cls.decorator_list:
        if _decorator_callee_name(decorator) != "guarded_by":
            continue
        if not isinstance(decorator, ast.Call) or not decorator.args:
            continue
        strings = _string_args(decorator.args)
        if len(strings) < 2:
            continue
        lock, fields = strings[0], strings[1:]
        aliases: Tuple[str, ...] = ()
        for kw in decorator.keywords:
            if kw.arg == "aliases" and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                aliases = tuple(_string_args(kw.value.elts))
        decls.append(_GuardDecl(lock, aliases, fields))
    return decls


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register_rule
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "@guarded_by fields must be accessed inside `with self.<lock>`; "
        "nested lock acquisition must follow LOCK_ORDER"
    )
    paths: Tuple[str, ...] = ("serve", "obs")

    def check(self, module: ModuleContext) -> Iterable[Violation]:
        out: List[Violation] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class(module, node))
        return out

    # ------------------------------------------------------------- per class

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> List[Violation]:
        decls = _parse_guards(cls)
        #: guarded field -> (lock name, every attr that counts as holding it)
        field_locks: Dict[str, Tuple[str, FrozenSet[str]]] = {}
        for decl in decls:
            holding = frozenset((decl.lock,) + decl.aliases)
            for field in decl.fields:
                field_locks[field] = (decl.lock, holding)
        out: List[Violation] = []
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS:
                continue
            self._walk(
                module, cls.name, item, frozenset(), field_locks, out
            )
        return out

    def _walk(
        self,
        module: ModuleContext,
        class_name: str,
        node: ast.AST,
        held: FrozenSet[str],
        field_locks: Dict[str, Tuple[str, FrozenSet[str]]],
        out: List[Violation],
    ) -> None:
        if isinstance(node, ast.With):
            acquired = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    self._check_order(module, class_name, item.context_expr,
                                      attr, held, out)
                    acquired.append(attr)
            inner = held | frozenset(acquired)
            for item in node.items:
                self._walk(module, class_name, item.context_expr, held,
                           field_locks, out)
            for child in node.body:
                self._walk(module, class_name, child, inner, field_locks, out)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and attr in field_locks:
                lock, holding = field_locks[attr]
                if not (held & holding):
                    access = (
                        "write to"
                        if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "read of"
                    )
                    out.append(
                        self.violation(
                            module,
                            node,
                            f"{access} {class_name}.{attr} outside "
                            f"`with self.{lock}` (field is @guarded_by"
                            f"({lock!r}))",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            self._walk(module, class_name, child, held, field_locks, out)

    # ----------------------------------------------------------- lock order

    def _check_order(
        self,
        module: ModuleContext,
        class_name: str,
        node: ast.expr,
        attr: str,
        held: FrozenSet[str],
        out: List[Violation],
    ) -> None:
        rank = _rank_for(class_name, attr)
        if rank is None:
            return
        for held_attr in held:
            held_rank = _rank_for(class_name, held_attr)
            if held_rank is not None and held_rank >= rank:
                out.append(
                    self.violation(
                        module,
                        node,
                        f"acquiring self.{attr} while holding "
                        f"self.{held_attr} inverts the declared lock order "
                        f"(see repro.analysis.annotations.LOCK_ORDER)",
                    )
                )
