"""``seed-determinism`` — no unseeded entropy in the modules the
identical-encoder invariant depends on.

Invariant (PR 4, ROADMAP items 1/4): ``shard_fit`` bundling — and the
planned fleet-learning delta merge — are only valid because every worker
derives *the same* encoder from one concrete seed.  The seed flows
through ``np.random.default_rng(seed)`` / ``SeedSequence``; any draw from
ambient entropy (the legacy ``np.random.*`` global state, the ``random``
module, ``np.random.default_rng()`` with no argument, time-derived
values, ``os.urandom`` / ``uuid4`` / ``secrets``) in the encoder
construction path, the shard machinery or the split logic silently
breaks bit-exact determinism across workers — a merge of incompatible
banks, not an error.  Scope: ``hdc/encoders/`` (the structured SORF
encoders in ``hdc/encoders/structured.py`` included), ``hdc/fwht.py``
(the FWHT kernel those encoders build on), ``engine/shard.py``,
``datasets/splits.py``.

The ``obs`` package is scoped too, with one deliberate exemption:
``obs/ids.py`` is *the* designated entropy module (trace/span IDs via
``os.urandom``, wall-clock anchors via ``time.time``) — observability
needs IDs and timestamps, but confining every draw to that one file
keeps the rest of the tracing/metrics/recorder machinery provably
deterministic, and any entropy creeping into another obs module is a
lint failure, not a convention.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.core import ModuleContext, Rule, Violation, register_rule

#: Call targets that are always ambient entropy (dotted names).
_FORBIDDEN_CALLS = {
    "time.time": "time-derived entropy",
    "time.time_ns": "time-derived entropy",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "time/MAC-derived entropy",
    "uuid.uuid4": "OS entropy",
}

#: Prefixes where *any* call is ambient entropy.
_FORBIDDEN_PREFIXES = {
    "np.random.": "the unseeded legacy NumPy global RNG",
    "numpy.random.": "the unseeded legacy NumPy global RNG",
    "random.": "the unseeded stdlib global RNG",
    "secrets.": "OS entropy",
}

#: Exceptions under the forbidden prefixes: seedable constructors (flagged
#: only when called with no seed argument) and type references.
_SEEDABLE = {"default_rng", "RandomState", "Random", "SeedSequence"}
_TYPE_REFS = {"Generator", "BitGenerator"}


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@register_rule
class SeedDeterminismRule(Rule):
    name = "seed-determinism"
    description = (
        "no unseeded np.random.*/random.*/time-derived entropy in "
        "encoder/shard/split modules (identical-encoder invariant)"
    )
    paths: Tuple[str, ...] = (
        "hdc/encoders",
        "hdc/encoders/structured.py",
        "hdc/fwht.py",
        "engine/shard.py",
        "datasets/splits.py",
        "obs",
    )
    #: In-scope files where entropy is the *point* — the one module all
    #: obs ID/timestamp generation is funnelled through.
    exempt_paths: Tuple[str, ...] = ("obs/ids.py",)

    def check(self, module: ModuleContext) -> Iterable[Violation]:
        if module.package_path in self.exempt_paths:
            return []
        out: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            message = self._diagnose(name, node)
            if message is not None:
                out.append(self.violation(module, node, message))
        return out

    def _diagnose(self, name: str, call: ast.Call) -> Optional[str]:
        if name in _FORBIDDEN_CALLS:
            return (
                f"{name}() is {_FORBIDDEN_CALLS[name]}; seed-determinism "
                "requires all randomness to derive from an explicit seed"
            )
        for prefix, what in _FORBIDDEN_PREFIXES.items():
            if not name.startswith(prefix):
                continue
            leaf = name[len(prefix):]
            if leaf in _TYPE_REFS:
                return None
            if leaf in _SEEDABLE:
                if call.args or call.keywords:
                    return None  # explicitly seeded constructor
                return (
                    f"{name}() without a seed draws OS entropy; pass the "
                    "seed through (identical-encoder invariant)"
                )
            return (
                f"{name}() uses {what}; derive randomness from an "
                "explicitly seeded np.random.default_rng / SeedSequence"
            )
        return None
