"""``repro.analysis`` — the invariant linter and concurrency annotations.

The codebase's load-bearing contracts (backend dtype purity, serve lock
discipline, seed-coherent encoders, versioned-cache coherence, public-API
hygiene) are enforced mechanically at lint time: ``repro lint src/`` runs
every registered :class:`~repro.analysis.core.Rule` over the tree and
fails CI on any unsuppressed violation.  See ``docs/analysis.md``.
"""

from repro.analysis.annotations import (
    LOCK_ORDER,
    LockOrderError,
    TrackedLock,
    enable_runtime_lock_checks,
    guarded_by,
    guarded_fields,
    make_lock,
)
from repro.analysis.core import (
    REPORT_SCHEMA,
    ModuleContext,
    Report,
    Rule,
    Violation,
    all_rules,
    check_file,
    get_rules,
    parse_suppressions,
    register_rule,
    run_analysis,
)

__all__ = [
    "LOCK_ORDER",
    "LockOrderError",
    "TrackedLock",
    "enable_runtime_lock_checks",
    "guarded_by",
    "guarded_fields",
    "make_lock",
    "REPORT_SCHEMA",
    "ModuleContext",
    "Report",
    "Rule",
    "Violation",
    "all_rules",
    "check_file",
    "get_rules",
    "parse_suppressions",
    "register_rule",
    "run_analysis",
]
