"""Concurrency annotations the invariant linter and the runtime shim read.

Two complementary enforcement layers share the declarations here:

- **Static** — the ``lock-discipline`` rule (:mod:`repro.analysis.rules`)
  reads ``@guarded_by`` decorators off the AST and verifies every
  lexical read/write of a guarded attribute sits inside
  ``with self.<lock>:``, and that lexically nested acquisitions follow
  :data:`LOCK_ORDER`.
- **Runtime** — :func:`make_lock` hands out plain ``threading.Lock``
  objects in production and order-asserting :class:`TrackedLock` objects
  when the checks are enabled (the test suite turns them on in
  ``conftest.py``, and ``REPRO_LOCK_CHECKS=1`` forces them anywhere), so
  an acquisition order the static rule cannot see — locks reached
  through another object at runtime — fails the test that exercises it
  instead of deadlocking a production fleet.

``LOCK_ORDER`` is the single declared total order for the serving
stack's locks (PR 5's concurrency surface).  Acquiring a lock while
holding one of equal or later rank raises :class:`LockOrderError` under
the shim and is flagged by the linter when lexically visible.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

_C = TypeVar("_C")

#: Class-attribute name the decorator stores its declarations under.
GUARDED_ATTR = "__guarded_fields__"

#: The one declared lock total order, outermost first.  A thread may only
#: acquire a lock whose rank is strictly greater than every lock it
#: already holds.  Rationale (see docs/analysis.md): the adapter calls
#: into the server (never the reverse), the fleet supervisor calls into
#: single-process servers and metrics (never the reverse), the server's
#: swap path touches version drain locks, the batcher's drain path runs
#: the handler which enters a version and reports metrics — so adapter <
#: fleet < server < batcher < version < metrics can never invert.  The
#: observability locks (PR 10) rank after everything: any serving
#: component may finish a span, bump a registry instrument, or append a
#: flight-recorder record from inside its own critical section, and the
#: obs layer never calls back into serving.  Within obs, a finishing
#: span is handed from the tracer to the flight recorder, so tracer <
#: registry < recorder.  The tracer and recorder rings are sharded
#: (``repro.obs.ring.ShardedRing``) so the hot path takes an
#: uncontended per-thread shard lock; the shard locks are pure leaves
#: (nothing is acquired while one is held).
LOCK_ORDER: Tuple[str, ...] = (
    "OnlineAdapter._lock",
    "FleetServer._lock",
    "ModelServer._swap_lock",
    "MicroBatcher._drain_lock",
    "ModelVersion._lock",
    "ServerMetrics._lock",
    "Tracer._shard_lock",
    "MetricsRegistry._lock",
    "FlightRecorder._shard_lock",
)


def lock_rank(name: str) -> Optional[int]:
    """Rank of ``name`` ("Class.attr") in :data:`LOCK_ORDER`, if declared."""
    try:
        return LOCK_ORDER.index(name)
    except ValueError:
        return None


def guarded_by(
    lock: str, *fields: str, aliases: Tuple[str, ...] = ()
) -> Callable[[type], type]:
    """Declare that ``fields`` of the decorated class are guarded by
    ``self.<lock>``.

    Purely declarative at runtime — the decorator records the contract on
    the class (``__guarded_fields__``) and returns it unchanged; the
    ``lock-discipline`` linter rule is the enforcer.  ``aliases`` name
    attributes that acquire the *same* underlying lock when entered (a
    ``threading.Condition`` constructed over it), so ``with self.<alias>:``
    also counts as holding the lock.

    Examples
    --------
    >>> @guarded_by("_lock", "_in_flight", aliases=("_drained",))
    ... class Tracker:
    ...     pass
    >>> Tracker.__guarded_fields__
    {'_in_flight': {'lock': '_lock', 'aliases': ('_drained',)}}
    """
    if not fields:
        raise ValueError("guarded_by needs at least one guarded field name")

    def decorate(cls: type) -> type:
        declared: Dict[str, Dict[str, object]] = dict(
            getattr(cls, GUARDED_ATTR, {})
        )
        for field in fields:
            declared[field] = {"lock": lock, "aliases": tuple(aliases)}
        setattr(cls, GUARDED_ATTR, declared)
        return cls

    return decorate


def guarded_fields(cls: type) -> Dict[str, Dict[str, object]]:
    """The ``@guarded_by`` declarations recorded on ``cls`` (may be empty)."""
    return dict(getattr(cls, GUARDED_ATTR, {}))


# --------------------------------------------------------- runtime shim


class LockOrderError(RuntimeError):
    """A lock acquisition violated :data:`LOCK_ORDER`."""


_runtime_checks = bool(int(os.environ.get("REPRO_LOCK_CHECKS", "0") or "0"))
_held = threading.local()


def enable_runtime_lock_checks(enabled: bool = True) -> None:
    """Turn the order-asserting locks on/off for locks created *after* the
    call (the test suite enables them before any server is built)."""
    global _runtime_checks
    _runtime_checks = bool(enabled)


def runtime_lock_checks_enabled() -> bool:
    return _runtime_checks


def _held_stack() -> List[Tuple[int, str]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


class TrackedLock:
    """A ``threading.Lock`` that asserts :data:`LOCK_ORDER` on acquisition.

    Drop-in for the lock attributes named in ``LOCK_ORDER``: supports the
    context-manager protocol and the ``acquire``/``release`` pair
    ``threading.Condition`` drives, and keeps a thread-local stack of
    held ranks.  Acquiring out of order raises :class:`LockOrderError`
    immediately — turning a would-be fleet deadlock into a test failure.
    Unordered (unknown-name) locks pass through untracked.
    """

    __slots__ = ("name", "rank", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.rank = lock_rank(name)
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self.rank is not None and blocking:
            stack = _held_stack()
            if stack:
                top_rank, top_name = max(stack)
                if top_rank >= self.rank:
                    raise LockOrderError(
                        f"acquiring {self.name!r} (rank {self.rank}) while "
                        f"holding {top_name!r} (rank {top_rank}) violates the "
                        f"declared lock order {LOCK_ORDER}"
                    )
        got = self._lock.acquire(blocking, timeout)
        if got and self.rank is not None:
            _held_stack().append((self.rank, self.name))
        return got

    def release(self) -> None:
        self._lock.release()
        if self.rank is not None:
            stack = _held_stack()
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][1] == self.name:
                    del stack[i]
                    break

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackedLock({self.name!r}, rank={self.rank})"


def make_lock(name: str) -> threading.Lock:
    """A lock for the declared slot ``name`` ("Class.attr").

    Plain ``threading.Lock`` in production (zero overhead); an
    order-asserting :class:`TrackedLock` when the runtime checks are on.
    """
    if _runtime_checks:
        return TrackedLock(name)  # type: ignore[return-value]
    return threading.Lock()
