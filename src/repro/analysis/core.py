"""The invariant-linter core: rule registry, per-file driver, suppressions.

The library's correctness rests on contracts that ordinary tests cannot
pin — the :class:`~repro.hdc.memory.AssociativeMemory` versioned-cache
invariant, the seed-coherent identical-encoder invariant behind
``shard_fit`` bundling, the ArrayBackend dtype-preservation rule, the
``serve`` locking discipline.  A violation of any of them is a heisenbug
in a multi-threaded or multi-process fleet, not a deterministic test
failure, so this package checks them *mechanically at lint time*: each
contract is an AST :class:`Rule`, the driver runs every registered rule
over every file, and ``repro lint src/`` gates CI.

Vocabulary
----------
- A :class:`Rule` owns one invariant.  It sees a :class:`ModuleContext`
  (path + parsed AST + source) and yields :class:`Violation` records.
- Rules register themselves via :func:`register_rule`; the registry is
  the single source the driver, the CLI ``--rule`` filter and the docs
  table all read.
- A violation on a line carrying ``# repro: allow[<rule>] <reason>`` is
  *suppressed* — counted, never fatal.  Suppressions are deliberately
  loud (rule name + free-text reason) so exceptions to an invariant stay
  reviewable; see ``docs/analysis.md``.

Scoping
-------
Rules declare the sub-packages they police via ``paths`` — entries are
matched against the module path relative to the ``repro`` package root
(``"hdc"`` matches ``repro/hdc/**``, ``"engine/shard.py"`` exactly that
file).  An empty tuple means every file.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Schema version of the JSON report (bump on shape changes).
REPORT_SCHEMA = 1

#: ``# repro: allow[rule-a,rule-b] optional free-text reason``
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[a-z0-9_,\s*-]+)\](?P<reason>.*)$"
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One broken invariant at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppress_reason: Optional[str] = None

    def as_record(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}{mark}"


class ModuleContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        #: Module path relative to the ``repro`` package root (POSIX
        #: separators), e.g. ``"hdc/memory.py"``; falls back to the file
        #: name when the file lives outside a ``repro`` package.
        self.package_path = _package_relative(path)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _package_relative(path: Path) -> str:
    parts = path.as_posix().split("/")
    for anchor in ("repro",):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            rel = "/".join(parts[idx + 1:])
            if rel:
                return rel
    return path.name


class Rule:
    """Base class for one mechanically-checked invariant.

    Subclasses set :attr:`name` / :attr:`description` / :attr:`paths` and
    implement :meth:`check`.  ``paths`` scoping is resolved by the driver
    (:meth:`applies_to`), so ``check`` only ever sees in-scope modules.
    """

    #: Registry key, also the ``allow[...]`` suppression token.
    name: str = "abstract"
    #: One-line summary (the docs table and ``repro lint --list`` print it).
    description: str = ""
    #: Package-relative path prefixes this rule polices ('' = everything).
    paths: Tuple[str, ...] = ()

    def applies_to(self, package_path: str) -> bool:
        if not self.paths:
            return True
        for prefix in self.paths:
            if package_path == prefix or package_path.startswith(
                prefix.rstrip("/") + "/"
            ):
                return True
        return False

    def check(self, module: ModuleContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.name,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: name -> rule instance; populated by :func:`register_rule`.
_RULES: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if rule.name in _RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _RULES[rule.name] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    """The registered rules, importing the built-in rule modules once."""
    from repro.analysis import rules as _builtin  # noqa: F401  (registration)

    return dict(_RULES)


def get_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    registry = all_rules()
    if names is None:
        return [registry[k] for k in sorted(registry)]
    missing = sorted(set(names) - set(registry))
    if missing:
        raise KeyError(
            f"unknown rule(s) {missing}; registered: {sorted(registry)}"
        )
    return [registry[name] for name in sorted(set(names))]


# ------------------------------------------------------------- suppressions


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Dict[str, str]]:
    """Per-line ``# repro: allow[...]`` markers.

    Returns ``{lineno: {rule_name: reason}}`` (1-based line numbers).  A
    marker suppresses matching violations reported *on its own line*.
    """
    out: Dict[int, Dict[str, str]] = {}
    for i, text in enumerate(lines, start=1):
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        reason = match.group("reason").strip().lstrip("-—:").strip()
        entry = out.setdefault(i, {})
        for name in match.group("rules").split(","):
            name = name.strip()
            if name:
                entry[name] = reason
    return out


def apply_suppressions(
    violations: Iterable[Violation], suppressions: Dict[int, Dict[str, str]]
) -> List[Violation]:
    out = []
    for v in violations:
        allowed = suppressions.get(v.line, {})
        if v.rule in allowed or "*" in allowed:
            reason = allowed.get(v.rule, allowed.get("*", ""))
            v = dataclasses.replace(
                v, suppressed=True, suppress_reason=reason or None
            )
        out.append(v)
    return out


# ------------------------------------------------------------------ driver


class Report:
    """Outcome of one lint run over a file set."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.files_checked = 0
        self.parse_errors: List[Dict[str, object]] = []

    @property
    def active(self) -> List[Violation]:
        return [v for v in self.violations if not v.suppressed]

    @property
    def suppressed(self) -> List[Violation]:
        return [v for v in self.violations if v.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors

    def as_payload(self, rules: Sequence[Rule]) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": [
                {"name": r.name, "description": r.description, "paths": list(r.paths)}
                for r in rules
            ],
            "n_violations": len(self.active),
            "n_suppressed": len(self.suppressed),
            "violations": [v.as_record() for v in self.active],
            "suppressed": [v.as_record() for v in self.suppressed],
            "parse_errors": list(self.parse_errors),
        }

    def to_json(self, rules: Sequence[Rule]) -> str:
        return json.dumps(self.as_payload(rules), indent=2, sort_keys=False)

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        for err in self.parse_errors:
            lines.append(f"{err['path']}:{err['line']}: [parse-error] {err['message']}")
        summary = (
            f"{self.files_checked} file(s) checked, "
            f"{len(self.active)} violation(s), "
            f"{len(self.suppressed)} suppressed"
        )
        lines.append(summary)
        return "\n".join(lines)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for file in candidates:
            seen[file.resolve()] = file
    return [seen[key] for key in sorted(seen)]


def check_file(
    path: Path,
    rules: Sequence[Rule],
    *,
    on_parse_error: Optional[Callable[[Path, SyntaxError], None]] = None,
) -> List[Violation]:
    """Run ``rules`` over one file, suppression markers applied."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        if on_parse_error is not None:
            on_parse_error(path, exc)
            return []
        raise
    module = ModuleContext(path, source, tree)
    suppressions = parse_suppressions(module.lines)
    found: List[Violation] = []
    for rule in rules:
        if rule.applies_to(module.package_path):
            found.extend(rule.check(module))
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return apply_suppressions(found, suppressions)


def run_analysis(
    paths: Sequence[Path], rule_names: Optional[Sequence[str]] = None
) -> Report:
    """Lint ``paths`` (files or trees) under the selected rules."""
    rules = get_rules(rule_names)
    report = Report()

    def _record_parse_error(path: Path, exc: SyntaxError) -> None:
        report.parse_errors.append(
            {"path": str(path), "line": exc.lineno or 0, "message": exc.msg}
        )

    for file in iter_python_files([Path(p) for p in paths]):
        report.files_checked += 1
        report.violations.extend(
            check_file(file, rules, on_parse_error=_record_parse_error)
        )
    return report
