"""Command-line interface: ``disthd-repro``.

Subcommands:

- ``datasets`` — list the Table-I registry;
- ``train`` — fit a model on a dataset analog and print the metric suite;
- ``compare`` — run the Fig. 4-style model comparison on one dataset;
- ``robustness`` — run a Fig. 8-style bit-flip sweep for one model.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import (
    BaselineHDClassifier,
    KNNClassifier,
    LinearSVMClassifier,
    MLPClassifier,
    NeuralHDClassifier,
    OnlineHDClassifier,
    RFFSVMClassifier,
)
from repro.core.disthd import DistHDClassifier
from repro.datasets.loaders import load_dataset
from repro.datasets.registry import DATASETS, list_datasets
from repro.noise.robustness import quality_loss_sweep
from repro.pipeline.experiment import run_experiment
from repro.pipeline.report import format_markdown_table

_MODELS = {
    "disthd": lambda dim, seed: DistHDClassifier(dim=dim, seed=seed),
    "baselinehd": lambda dim, seed: BaselineHDClassifier(dim=dim, seed=seed),
    "neuralhd": lambda dim, seed: NeuralHDClassifier(dim=dim, seed=seed),
    "onlinehd": lambda dim, seed: OnlineHDClassifier(dim=dim, seed=seed),
    "mlp": lambda dim, seed: MLPClassifier(hidden_sizes=(dim,), seed=seed),
    "svm": lambda dim, seed: LinearSVMClassifier(seed=seed),
    "rff-svm": lambda dim, seed: RFFSVMClassifier(n_components=dim, seed=seed),
    "knn": lambda dim, seed: KNNClassifier(k=5),
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="ucihar", choices=sorted(DATASETS),
        help="Table-I dataset analog to generate",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="fraction of the published sample counts to generate",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--dim", type=int, default=500, help="hypervector dimensionality D",
    )


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "n": spec.n_features,
            "k": spec.n_classes,
            "train": spec.train_size,
            "test": spec.test_size,
            "description": spec.description,
        }
        for spec in (DATASETS[name] for name in list_datasets())
    ]
    print(format_markdown_table(rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    model = _MODELS[args.model](args.dim, args.seed)
    result = run_experiment(model, ds, model_name=args.model)
    print(format_markdown_table([result.as_row()]))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    rows = []
    for name in args.models:
        model = _MODELS[name](args.dim, args.seed)
        rows.append(run_experiment(model, ds, model_name=name).as_row())
    columns = ["model", "test_acc", "top2_acc", "train_s", "infer_s"]
    print(format_markdown_table(rows, columns=columns))
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    model = _MODELS[args.model](args.dim, args.seed)
    model.fit(ds.train_x, ds.train_y)
    points = quality_loss_sweep(
        model, ds.test_x, ds.test_y, bits=args.bits, seed=args.seed
    )
    rows = [
        {
            "error_rate": p.error_rate,
            "bits": p.bits,
            "clean_acc": p.clean_accuracy,
            "noisy_acc": p.noisy_accuracy,
            "quality_loss_pct": p.quality_loss,
        }
        for p in points
    ]
    print(format_markdown_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="disthd-repro",
        description="DistHD (DAC 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-I dataset registry")

    train = sub.add_parser("train", help="train one model, print metrics")
    _add_common(train)
    train.add_argument("--model", default="disthd", choices=sorted(_MODELS))

    compare = sub.add_parser("compare", help="compare several models")
    _add_common(compare)
    compare.add_argument(
        "--models", nargs="+", default=["disthd", "baselinehd", "neuralhd"],
        choices=sorted(_MODELS),
    )

    robust = sub.add_parser("robustness", help="bit-flip robustness sweep")
    _add_common(robust)
    robust.add_argument("--model", default="disthd", choices=sorted(_MODELS))
    robust.add_argument("--bits", type=int, default=8, choices=(1, 2, 4, 8))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "train": _cmd_train,
        "compare": _cmd_compare,
        "robustness": _cmd_robustness,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
