"""Command-line interface: ``repro`` (also installed as ``disthd-repro``).

Subcommands:

- ``datasets`` — list the Table-I dataset registry;
- ``models`` — list the model registry (names, tags, hyper-parameters);
- ``train`` — fit a model on a dataset analog and print the metric suite;
- ``compare`` — run the Fig. 4-style model comparison on one dataset;
- ``grid`` — grid-search a model's hyper-parameter space (``--n-jobs``
  fans candidate fits across a process pool);
- ``robustness`` — run a Fig. 8-style bit-flip sweep for one model;
- ``bench`` — time encode/fit/predict per model and emit ``BENCH_*.json``
  (the tracked performance trajectory; ``--smoke`` for the CI-sized run);
- ``predict`` — one-shot inference from a persisted model archive
  (``save_model`` output) over a ``.npy``/``.csv`` feature file;
- ``serve`` — run a self-contained micro-batched serving session: train
  (or load) a model, front it with a :class:`~repro.serve.server.ModelServer`,
  drive it with the concurrent load generator, optionally hot-swap an
  adapted version mid-run, and print the stats JSON (SIGTERM/SIGINT
  drain and release resources before exit);
- ``chaos`` — fault-inject a multi-process serving fleet
  (:class:`~repro.serve.fleet.server.FleetServer`) under closed-loop
  load: worker SIGKILL, hang, slow-worker latency, artifact corruption,
  plus the crash-loop circuit-breaker drill; prints the drill JSON;
- ``obs`` — run a small self-contained *traced* serving session
  (sample rate 1.0 by default), scrape its own ``/metrics`` +
  ``/healthz`` exporter, validate the shutdown flight dump, and print
  the whole observability surface as JSON (or the raw Prometheus text
  with ``--format prometheus``) — the CLI entry point for
  :mod:`repro.obs` and what the CI obs-smoke job drives;
- ``lint`` — run the :mod:`repro.analysis` invariant linter over source
  trees (``repro lint src/``); exits non-zero on any unsuppressed
  violation (the CI gate — see ``docs/analysis.md``).

``serve`` and ``chaos`` accept the observability knobs
``--trace-sample-rate`` (propagated client → batcher → dispatcher →
worker spans), ``--metrics-port`` (a stdlib-http ``/metrics`` +
``/healthz`` exporter for the session's registry) and ``--flight-dir``
(crash/shutdown flight-recorder dumps land there as JSONL) — see
``docs/observability.md``.

``train`` and ``compare`` accept ``--n-jobs`` too: for sharding-capable
models it is forwarded as the ``n_jobs`` hyper-parameter, so fits run
data-parallel via :func:`repro.engine.shard.shard_fit`.

Model and dataset choices are read from the registries, so anything
registered via :func:`repro.models.register_model` or the dataset registry
is immediately drivable from the command line.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.api import ExperimentSpec, compare, run_experiment
from repro.datasets.registry import DATASETS, list_datasets
from repro.models.registry import get_model_spec, list_models
from repro.pipeline.report import format_markdown_table


def _registry_epilog() -> str:
    return (
        f"registered models: {', '.join(list_models())}\n"
        f"registered datasets: {', '.join(list_datasets())}"
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="ucihar", choices=sorted(DATASETS),
        help="Table-I dataset analog to generate",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="fraction of the published sample counts to generate",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--dim", type=int, default=500,
        help="capacity knob: hypervector dimensionality / hidden width / "
        "random-feature count (ignored by models without a dim parameter)",
    )
    parser.add_argument(
        "--encoder", default=None,
        help="encoder spec from the registry (rbf | fastfood-rbf | "
        "projection-{linear,sign,tanh,cos} | structured-{...}; ignored "
        "by models without an encoder parameter)",
    )


def _add_n_jobs(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument(
        "--n-jobs", type=int, default=None, dest="n_jobs",
        help=f"{help_text} (default serial; -1 = all cores)",
    )


def _add_obs_knobs(
    parser: argparse.ArgumentParser, *, default_rate: float = 0.0
) -> None:
    parser.add_argument(
        "--trace-sample-rate", type=float, default=default_rate,
        dest="trace_sample_rate",
        help="fraction of requests to trace end to end (0 disables "
        f"tracing; default {default_rate:g})",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, dest="metrics_port",
        help="serve /metrics (Prometheus text) + /healthz on this "
        "localhost port for the session (0 = ephemeral)",
    )
    parser.add_argument(
        "--flight-dir", default=None, dest="flight_dir",
        help="directory for flight-recorder JSONL dumps (written on "
        "worker death, breaker trip, and graceful shutdown)",
    )


def _build_obs(args: argparse.Namespace, *, role: str = "server"):
    """An :class:`repro.obs.Observability` bundle from the CLI knobs, or
    ``None`` when every knob is at its disabled default (so sessions
    without observability pay nothing)."""
    from repro.obs import Observability

    if (
        args.trace_sample_rate <= 0.0
        and args.metrics_port is None
        and args.flight_dir is None
    ):
        return None
    return Observability(
        sample_rate=max(0.0, args.trace_sample_rate),
        flight_dir=args.flight_dir,
        role=role,
    )


def _obs_summary(obs, exporter) -> dict:
    """JSON-ready summary of what a session's obs bundle captured."""
    from repro.obs.recorder import find_dumps

    return {
        "sample_rate": obs.tracer.sample_rate,
        "spans_recorded": len(obs.tracer.finished()),
        "n_traces": len(obs.tracer.trace_ids()),
        "metrics_url": exporter.url if exporter is not None else None,
        "flight_dir": (
            str(obs.flight_dir) if obs.flight_dir is not None else None
        ),
        "flight_dumps": (
            [p.name for p in find_dumps(obs.flight_dir)]
            if obs.flight_dir is not None else None
        ),
    }


def _model_params(name: str, args: argparse.Namespace) -> dict:
    """CLI knobs, filtered to what the registered model declares."""
    declared = get_model_spec(name).param_names()
    params: dict = {}
    if "dim" in declared:
        params["dim"] = args.dim
    encoder = getattr(args, "encoder", None)
    if encoder is not None and "encoder" in declared:
        params["encoder"] = encoder
    return params


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "n": spec.n_features,
            "k": spec.n_classes,
            "train": spec.train_size,
            "test": spec.test_size,
            "description": spec.description,
        }
        for spec in (DATASETS[name] for name in list_datasets())
    ]
    print(format_markdown_table(rows))
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "tags": ",".join(spec.tags),
            "hyperparams": ", ".join(spec.param_names()),
            "description": spec.description,
        }
        for spec in (
            get_model_spec(name) for name in list_models(tag=args.tag)
        )
    ]
    if not rows:
        print(f"no models registered with tag {args.tag!r}")
        return 1
    print(format_markdown_table(rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    result = run_experiment(
        model=args.model,
        dataset=args.dataset,
        model_params=_model_params(args.model, args),
        scale=args.scale,
        seed=args.seed,
        n_jobs=args.n_jobs,
    )
    print(format_markdown_table([result.as_row()]))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = compare(
        [
            (name, name, _model_params(name, args))
            for name in args.models
        ],
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        n_jobs=args.n_jobs,
    )
    columns = ["model", "test_acc", "top2_acc", "train_s", "infer_s"]
    print(format_markdown_table([r.as_row() for r in results], columns=columns))
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.datasets.loaders import load_dataset
    from repro.models.registry import default_hyperparam_grid
    from repro.pipeline.grid import grid_search

    if args.space:
        try:
            space = json.loads(args.space)
        except json.JSONDecodeError as exc:
            print(f"--space is not valid JSON: {exc}")
            return 2
        if not isinstance(space, dict):
            print("--space must be a JSON object {param: [values...]}")
            return 2
    else:
        space = default_hyperparam_grid(args.model)
        if not space:
            print(
                f"model {args.model!r} declares no default grid; pass --space"
            )
            return 2
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    result = grid_search(
        args.model,
        space,
        data.train_x,
        data.train_y,
        validation_fraction=args.validation_fraction,
        seed=args.seed,
        n_jobs=args.n_jobs,
    )
    print(format_markdown_table(result.all_results))
    print(
        f"best: {result.best_params} -> score {result.best_score:.4f} "
        f"({len(result.all_results)} candidates, n_jobs={args.n_jobs or 1})"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import format_bench_table, run_bench, write_bench

    payload = run_bench(
        models=tuple(args.models),
        dataset=args.dataset,
        scale=args.scale,
        dim=args.dim,
        iterations=args.iterations,
        seed=args.seed,
        repeats=args.repeats,
        backend=args.backend,
        dtype=args.dtype,
        smoke=args.smoke,
        include_legacy=not args.no_legacy,
        include_regen_heavy=not args.no_regen_heavy,
        include_sharded=not args.no_sharded,
        include_serving=not args.no_serving,
        include_packed=not args.no_packed,
        include_fleet=not args.no_fleet,
        include_encode=not args.no_encode,
        include_obs=not args.no_obs,
    )
    print(format_bench_table(payload))
    if args.output:
        path = write_bench(payload, args.output)
        print(f"wrote {path}")
    return 0


def _load_features(path: str):
    """Read a feature matrix from ``.npy`` or delimited text."""
    import numpy as np

    if path.endswith(".npy"):
        X = np.load(path, allow_pickle=False)
    else:
        X = np.loadtxt(path, delimiter=",", ndmin=2)
    return np.asarray(X, dtype=np.float64)


def _cmd_predict(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.api import load_model

    model = load_model(args.model_path)
    X = _load_features(args.input)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if args.scores:
        out = np.asarray(model.decision_scores(X))
        text = "\n".join(",".join(f"{v:.6g}" for v in row) for row in out)
    else:
        out = np.asarray(model.predict(X))
        text = "\n".join(str(v) for v in out)
    if args.output:
        if args.output.endswith(".npy"):
            np.save(args.output, out)
        else:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
        print(f"wrote {args.output} ({out.shape[0]} rows)")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import shutdown as shutdown_mod

    if args.packed and args.bits != 1:
        print(
            "serve --packed requires --bits 1 (bit-packed storage is "
            "1-bit by construction)",
            file=sys.stderr,
        )
        return 2
    # SIGTERM/SIGINT must drain the batcher and release shared resources
    # (worker processes, shared-memory segments) before the process dies —
    # not rely on interpreter teardown.
    shutdown_mod.install_signal_handlers()
    try:
        return _run_serve(args)
    finally:
        shutdown_mod.uninstall_signal_handlers()


def _run_serve(args: argparse.Namespace) -> int:
    obs = _build_obs(args)
    exporter = None
    if obs is not None and args.metrics_port is not None:
        exporter = obs.serve_metrics(port=args.metrics_port)
        print(f"metrics exporter on {exporter.url}", file=sys.stderr)
    tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
    try:
        return _run_serve_session(args, obs, exporter, tracer)
    finally:
        if exporter is not None:
            exporter.close()


def _run_serve_session(
    args: argparse.Namespace, obs, exporter, tracer
) -> int:
    from repro.perf import bench_serving
    from repro.serve.loadgen import run_load
    from repro.serve.server import ModelServer

    if args.model_path:
        # Serve a persisted artifact as-is: load, front, drive.  No
        # trainable base is available, so no adaptation/hot-swap.
        if not args.input:
            print(
                "serve --model-path needs --input features to drive "
                "the load generator",
                file=sys.stderr,
            )
            return 2
        X = _load_features(args.input)
        server = ModelServer(
            args.model_path,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            obs=obs,
        )
        with server:
            report = run_load(
                server, X,
                n_requests=args.requests, concurrency=args.concurrency,
                tracer=tracer,
            )
            payload = {
                "config": {
                    "model_path": args.model_path,
                    "requests": args.requests,
                    "concurrency": args.concurrency,
                    "max_batch_size": args.max_batch_size,
                    "max_wait_ms": args.max_wait_ms,
                },
                "load": report.as_record(),
                "stats": server.stats(),
            }
    else:
        payload = {
            "config": {
                "dataset": args.dataset,
                "scale": args.scale,
                "dim": args.dim,
                "seed": args.seed,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "max_batch_size": args.max_batch_size,
                "max_wait_ms": args.max_wait_ms,
                "swap": not args.no_swap,
                "packed": args.packed,
            },
            "serving": bench_serving(
                dataset=args.dataset,
                scale=args.scale,
                dim=args.dim,
                iterations=args.iterations,
                bits=args.bits,
                packed=args.packed,
                n_requests=args.requests,
                concurrency=args.concurrency,
                max_batch_size=args.max_batch_size,
                max_wait_ms=args.max_wait_ms,
                seed=args.seed,
                swap=not args.no_swap,
                encoder=args.encoder or "rbf",
                obs=obs,
            ),
        }
    if obs is not None:
        payload["obs"] = _obs_summary(obs, exporter)
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.datasets.loaders import load_dataset
    from repro.deploy.quantized import QuantizedHDCModel
    from repro.models.registry import make_model
    from repro.serve import shutdown as shutdown_mod
    from repro.serve.chaos import run_chaos_drill, run_crash_loop_drill
    from repro.serve.fleet import FleetServer

    if args.packed and args.bits != 1:
        print(
            "chaos --packed requires --bits 1 (bit-packed storage is "
            "1-bit by construction); pass --no-packed for wider bits",
            file=sys.stderr,
        )
        return 2
    shutdown_mod.install_signal_handlers()
    obs = _build_obs(args, role="supervisor")
    exporter = None
    if obs is not None and args.metrics_port is not None:
        exporter = obs.serve_metrics(port=args.metrics_port)
        print(f"metrics exporter on {exporter.url}", file=sys.stderr)
    tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
    try:
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        model = make_model(
            "disthd", dim=args.dim, iterations=args.iterations,
            seed=args.seed,
        )
        model.fit(data.train_x, data.train_y)
        artifact = QuantizedHDCModel(
            model, bits=args.bits, packed=args.packed
        )
        drills: Dict[str, object] = {}
        with FleetServer(
            artifact,
            n_workers=args.workers,
            queue_depth=args.queue_depth,
            service_floor_s=args.service_floor_ms / 1e3,
            obs=obs,
        ) as fleet:
            for fault in args.faults:
                drills[fault] = run_chaos_drill(
                    fleet, data.test_x,
                    n_requests=args.requests,
                    concurrency=args.concurrency,
                    fault=fault, index=0,
                    tracer=tracer,
                )
            stats = fleet.stats()
        if not args.no_crash_loop:
            # A fresh bundle for the second fleet: its dump filenames
            # carry a distinct role, so the first fleet's shutdown dump
            # in a shared --flight-dir is never overwritten.
            loop_obs = (
                _build_obs(args, role="crashloop")
                if obs is not None else None
            )
            with FleetServer(
                artifact, n_workers=2, queue_depth=args.queue_depth,
                obs=loop_obs,
            ) as fleet:
                drills["crash_loop"] = run_crash_loop_drill(fleet, index=0)
        payload = {
            "config": {
                "dataset": args.dataset,
                "scale": args.scale,
                "dim": args.dim,
                "bits": args.bits,
                "packed": args.packed,
                "workers": args.workers,
                "queue_depth": args.queue_depth,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "service_floor_ms": args.service_floor_ms,
                "faults": list(args.faults),
                "seed": args.seed,
            },
            "drills": drills,
            "stats": stats,
        }
        if obs is not None:
            payload["obs"] = _obs_summary(obs, exporter)
        text = json.dumps(payload, indent=2)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0
    finally:
        if exporter is not None:
            exporter.close()
        shutdown_mod.uninstall_signal_handlers()


def _cmd_obs(args: argparse.Namespace) -> int:
    """A self-contained traced serving session that exercises every obs
    pillar and reports on all of them: train a small model, serve a
    traced load, scrape the session's own ``/metrics`` + ``/healthz``
    exporter, and validate the shutdown flight dump."""
    import tempfile
    import urllib.request

    from repro.datasets.loaders import load_dataset
    from repro.deploy.quantized import QuantizedHDCModel
    from repro.models.registry import make_model
    from repro.obs import Observability, find_dumps, validate_dump
    from repro.serve.loadgen import run_load
    from repro.serve.server import ModelServer

    tmp = None
    flight_dir = args.flight_dir
    if flight_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-obs-")
        flight_dir = tmp.name
    try:
        obs = Observability(
            sample_rate=args.trace_sample_rate, flight_dir=flight_dir
        )
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        model = make_model(
            "disthd", dim=args.dim, iterations=args.iterations,
            seed=args.seed,
        )
        model.fit(data.train_x, data.train_y)
        artifact = QuantizedHDCModel(model, bits=args.bits)
        with obs.serve_metrics(port=args.port) as exporter:
            with ModelServer(
                artifact,
                max_batch_size=args.max_batch_size,
                max_wait_ms=args.max_wait_ms,
                obs=obs,
            ) as server:
                report = run_load(
                    server, data.test_x,
                    n_requests=args.requests,
                    concurrency=args.concurrency,
                    tracer=obs.tracer,
                )
                with urllib.request.urlopen(
                    exporter.url + "/healthz", timeout=10
                ) as resp:
                    healthz = resp.status
                with urllib.request.urlopen(
                    exporter.url + "/metrics", timeout=10
                ) as resp:
                    metrics_text = resp.read().decode()
            # The server just closed: its shutdown flight dump must exist
            # and parse — the obs-smoke CI job asserts on this.
            dumps = find_dumps(flight_dir)
            for path in dumps:
                validate_dump(path)
        if args.format == "prometheus":
            print(metrics_text, end="")
            return 0
        payload = {
            "config": {
                "dataset": args.dataset,
                "scale": args.scale,
                "dim": args.dim,
                "iterations": args.iterations,
                "bits": args.bits,
                "seed": args.seed,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "trace_sample_rate": args.trace_sample_rate,
            },
            "load": report.as_record(),
            "healthz_status": healthz,
            "metrics_url": exporter.url,
            "spans_recorded": len(obs.tracer.finished()),
            "n_traces": len(obs.tracer.trace_ids()),
            "flight_dir": str(flight_dir),
            "flight_dumps": [p.name for p in dumps],
            "metrics_json": obs.registry.render_json(),
            "metrics_prometheus": metrics_text,
        }
        text = json.dumps(payload, indent=2)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0
    finally:
        if tmp is not None:
            tmp.cleanup()


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import all_rules, get_rules, run_analysis

    if args.list_rules:
        rows = [
            {
                "rule": rule.name,
                "scope": ", ".join(rule.paths) or "(all)",
                "description": rule.description,
            }
            for name, rule in sorted(all_rules().items())
        ]
        print(format_markdown_table(rows))
        return 0
    if not args.paths:
        print("lint needs at least one file or directory", file=sys.stderr)
        return 2
    rule_names = args.rules or None
    report = run_analysis([Path(p) for p in args.paths], rule_names)
    rules = get_rules(rule_names)
    if args.json:
        text = report.to_json(rules)
    else:
        text = report.render()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
        if not args.json:
            print(text)
    else:
        print(text)
    return 0 if report.ok else 1


def _cmd_robustness(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        model=args.model,
        dataset=args.dataset,
        model_params=_model_params(args.model, args),
        scale=args.scale,
        seed=args.seed,
        noise_bits=args.bits,
        error_rates=(0.01, 0.02, 0.05, 0.10, 0.15),
    )
    result = run_experiment(spec)
    # clean_acc is the quantised zero-flip reference the losses are
    # measured against, not the float model's accuracy.
    rows = [
        {
            "error_rate": rate,
            "bits": args.bits,
            "clean_acc": result.extras["quantized_clean_acc"],
            "noisy_acc": result.extras[f"noisy_acc@{rate:g}"],
            "quality_loss_pct": result.extras[f"quality_loss@{rate:g}"],
        }
        for rate in spec.error_rates
    ]
    print(format_markdown_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DistHD (DAC 2023) reproduction toolkit",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-I dataset registry")

    models = sub.add_parser("models", help="list the model registry")
    models.add_argument(
        "--tag", default=None,
        help="filter by capability tag (e.g. streaming, hdc, deploy)",
    )

    train = sub.add_parser("train", help="train one model, print metrics")
    _add_common(train)
    train.add_argument("--model", default="disthd", choices=list_models())
    _add_n_jobs(train, "workers for data-parallel sharded fit")

    compare_p = sub.add_parser("compare", help="compare several models")
    _add_common(compare_p)
    compare_p.add_argument(
        "--models", nargs="+", default=["disthd", "baselinehd", "neuralhd"],
        choices=list_models(),
    )
    _add_n_jobs(compare_p, "workers for data-parallel sharded fits")

    grid = sub.add_parser(
        "grid", help="grid-search a model's hyper-parameter space"
    )
    _add_common(grid)
    grid.add_argument("--model", default="disthd", choices=list_models())
    grid.add_argument(
        "--space", default=None,
        help='JSON grid, e.g. \'{"dim": [128, 256]}\' '
        "(default: the registry's declared grid for the model)",
    )
    grid.add_argument(
        "--validation-fraction", type=float, default=0.25,
        help="fraction of the training split held out for scoring",
    )
    _add_n_jobs(grid, "candidate fits to run in parallel")

    robust = sub.add_parser("robustness", help="bit-flip robustness sweep")
    _add_common(robust)
    robust.add_argument("--model", default="disthd", choices=list_models())
    robust.add_argument("--bits", type=int, default=8, choices=(1, 2, 4, 8))

    bench = sub.add_parser(
        "bench", help="time encode/fit/predict, emit BENCH_*.json"
    )
    _add_common(bench)
    bench.set_defaults(scale=0.12, dim=1024)
    bench.add_argument(
        "--models", nargs="+", default=["disthd", "onlinehd", "baselinehd"],
        choices=list_models(),
    )
    bench.add_argument("--iterations", type=int, default=10)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--backend", default=None, help="array backend (numpy | torch)"
    )
    bench.add_argument(
        "--dtype", default=None, help="hot-path dtype (float32 | float64)"
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny CI-sized run (small dim/scale, one repeat)",
    )
    bench.add_argument(
        "--no-legacy", action="store_true",
        help="skip the pre-backend float64 reference timing",
    )
    bench.add_argument(
        "--no-regen-heavy", action="store_true",
        help="skip the regeneration-heavy fused-vs-PR2 scenario",
    )
    bench.add_argument(
        "--no-sharded", action="store_true",
        help="skip the sharded-fit (data-parallel) scenario",
    )
    bench.add_argument(
        "--no-serving", action="store_true",
        help="skip the micro-batched serving scenario",
    )
    bench.add_argument(
        "--no-packed", action="store_true",
        help="skip the bit-packed vs int8 deploy scenario",
    )
    bench.add_argument(
        "--no-fleet", action="store_true",
        help="skip the multi-process fleet resilience scenario",
    )
    bench.add_argument(
        "--no-encode", action="store_true",
        help="skip the dense-vs-structured encode-latency scenario",
    )
    bench.add_argument(
        "--no-obs", action="store_true",
        help="skip the observability-overhead scenario",
    )
    bench.add_argument("--output", default=None, help="JSON output path")

    predict = sub.add_parser(
        "predict", help="one-shot inference from a persisted model"
    )
    predict.add_argument(
        "--model-path", required=True,
        help="save_model archive (.npz) to load",
    )
    predict.add_argument(
        "--input", required=True,
        help="feature matrix: .npy, or comma-delimited text",
    )
    predict.add_argument(
        "--output", default=None,
        help="write results here (.npy or text) instead of stdout",
    )
    predict.add_argument(
        "--scores", action="store_true",
        help="emit per-class decision scores instead of labels",
    )

    serve = sub.add_parser(
        "serve", help="micro-batched serving session + load generator"
    )
    _add_common(serve)
    serve.set_defaults(dataset="pamap2", scale=0.004, dim=256)
    serve.add_argument(
        "--model-path", default=None,
        help="serve a persisted archive instead of training in-session "
        "(disables the adaptation hot-swap; needs --input)",
    )
    serve.add_argument(
        "--input", default=None,
        help="feature file to draw load-generator requests from "
        "(--model-path mode)",
    )
    serve.add_argument("--iterations", type=int, default=3)
    serve.add_argument(
        "--bits", type=int, default=8, choices=(1, 2, 4, 8),
        help="deploy-artifact precision",
    )
    serve.add_argument(
        "--requests", type=int, default=256, help="total requests to fire"
    )
    serve.add_argument(
        "--concurrency", type=int, default=8, help="closed-loop workers"
    )
    serve.add_argument("--max-batch-size", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument(
        "--packed", action="store_true",
        help="serve the bit-packed artifact (requires --bits 1); "
        "hot-swap promotions re-quantize and re-pack",
    )
    serve.add_argument(
        "--no-swap", action="store_true",
        help="skip the mid-run adaptation hot-swap",
    )
    _add_obs_knobs(serve)
    serve.add_argument("--output", default=None, help="JSON output path")

    chaos = sub.add_parser(
        "chaos",
        help="fault-inject a serving fleet under load (kill/hang/slow/"
        "corrupt + crash-loop breaker drill)",
    )
    _add_common(chaos)
    chaos.set_defaults(dataset="pamap2", scale=0.004, dim=256)
    chaos.add_argument("--iterations", type=int, default=3)
    chaos.add_argument(
        "--bits", type=int, default=1, choices=(1, 2, 4, 8),
        help="deploy-artifact precision",
    )
    chaos.add_argument(
        "--packed", action="store_true", default=True,
        help="serve the bit-packed artifact (requires --bits 1)",
    )
    chaos.add_argument(
        "--no-packed", dest="packed", action="store_false",
        help="serve the unpacked quantized artifact",
    )
    chaos.add_argument(
        "--workers", type=int, default=4, help="fleet worker processes"
    )
    chaos.add_argument(
        "--queue-depth", type=int, default=32,
        help="bounded per-worker queue length (admission control)",
    )
    chaos.add_argument(
        "--requests", type=int, default=256,
        help="requests per drill",
    )
    chaos.add_argument(
        "--concurrency", type=int, default=16, help="closed-loop workers"
    )
    chaos.add_argument(
        "--service-floor-ms", type=float, default=2.0,
        help="per-request service-time floor workers enforce",
    )
    chaos.add_argument(
        "--faults", nargs="+", default=["kill"],
        choices=("kill", "hang", "slow", "corrupt"),
        help="faults to inject, one drill each",
    )
    chaos.add_argument(
        "--no-crash-loop", action="store_true",
        help="skip the crash-loop circuit-breaker drill",
    )
    _add_obs_knobs(chaos)
    chaos.add_argument("--output", default=None, help="JSON output path")

    obs = sub.add_parser(
        "obs",
        help="traced serving session: scrape own /metrics + /healthz, "
        "validate the shutdown flight dump, print the obs surface",
    )
    _add_common(obs)
    obs.set_defaults(dataset="pamap2", scale=0.004, dim=256)
    obs.add_argument("--iterations", type=int, default=3)
    obs.add_argument(
        "--bits", type=int, default=8, choices=(1, 2, 4, 8),
        help="deploy-artifact precision",
    )
    obs.add_argument(
        "--requests", type=int, default=256, help="total requests to fire"
    )
    obs.add_argument(
        "--concurrency", type=int, default=8, help="closed-loop workers"
    )
    obs.add_argument("--max-batch-size", type=int, default=64)
    obs.add_argument("--max-wait-ms", type=float, default=2.0)
    obs.add_argument(
        "--trace-sample-rate", type=float, default=1.0,
        dest="trace_sample_rate",
        help="fraction of requests to trace (default 1.0: everything)",
    )
    obs.add_argument(
        "--port", type=int, default=0,
        help="exporter port to scrape (default 0: ephemeral)",
    )
    obs.add_argument(
        "--flight-dir", default=None, dest="flight_dir",
        help="keep flight dumps here (default: a temp dir, validated "
        "then discarded)",
    )
    obs.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="print the full JSON surface or just the scraped "
        "Prometheus text",
    )
    obs.add_argument("--output", default=None, help="JSON output path")

    lint = sub.add_parser(
        "lint", help="run the repro.analysis invariant linter"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (e.g. src/)",
    )
    lint.add_argument(
        "--rule", action="append", dest="rules", default=None,
        metavar="NAME", help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and their scopes",
    )
    lint.add_argument("--output", default=None, help="write the report here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "models": _cmd_models,
        "train": _cmd_train,
        "compare": _cmd_compare,
        "grid": _cmd_grid,
        "robustness": _cmd_robustness,
        "bench": _cmd_bench,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "obs": _cmd_obs,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
